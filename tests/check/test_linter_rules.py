"""Fixture corpus for the sim-lint rules: each rule fires on its bad
snippet and stays quiet on the matching good snippet."""

from __future__ import annotations

from repro.check import lint_source


def codes(source: str, module: str, path: str = "x.py"):
    return [f.code for f in lint_source(source, module=module, path=path)]


class TestSIM001WallClock:
    def test_flags_time_time_in_sim_code(self):
        src = "import time\n\ndef now() -> float:\n    return time.time()\n"
        assert "SIM001" in codes(src, "repro.sim.engine")

    def test_flags_aliased_import(self):
        src = "import time as _t\n\ndef now() -> float:\n    return _t.perf_counter()\n"
        assert "SIM001" in codes(src, "repro.core.ge")

    def test_flags_from_import(self):
        src = "from time import monotonic\n\ndef now() -> float:\n    return monotonic()\n"
        assert "SIM001" in codes(src, "repro.server.harness")

    def test_flags_datetime_now(self):
        src = "import datetime\n\ndef stamp() -> object:\n    return datetime.datetime.now()\n"
        assert "SIM001" in codes(src, "repro.power.models")

    def test_allows_wall_clock_outside_sim_layers(self):
        src = "import time\n\ndef now() -> float:\n    return time.time()\n"
        assert "SIM001" not in codes(src, "repro.cli")

    def test_allows_time_module_for_sleepless_uses(self):
        # Importing `time` alone is fine; only the wall-clock reads fire.
        src = "import time\n\ndef f() -> object:\n    return time.struct_time\n"
        assert "SIM001" not in codes(src, "repro.sim.engine")

    def test_obs_package_is_deterministic(self):
        # repro.obs joined the deterministic tree: telemetry must not
        # read wall clocks ... except the sanctioned profiler module.
        src = "import time\n\ndef now() -> float:\n    return time.perf_counter()\n"
        assert "SIM001" in codes(src, "repro.obs.tracer")

    def test_profiler_module_allowlisted(self):
        from repro.check.rules import SIM001_MODULE_ALLOWLIST

        assert "repro.obs.prof" in SIM001_MODULE_ALLOWLIST
        src = "import time\n\ndef now() -> float:\n    return time.perf_counter()\n"
        assert "SIM001" not in codes(src, "repro.obs.prof")

    def test_run_registry_module_allowlisted(self):
        # The run store stamps artifacts with a wall-clock created_unix;
        # that is storage metadata, not simulated time.
        from repro.check.rules import SIM001_MODULE_ALLOWLIST

        assert "repro.obs.runs" in SIM001_MODULE_ALLOWLIST
        src = "import time\n\ndef stamp() -> float:\n    return time.time()\n"
        assert "SIM001" not in codes(src, "repro.obs.runs")

    def test_streaming_modules_not_allowlisted(self):
        # Windowing and SLO evaluation run on simulated seconds only:
        # the streaming telemetry modules get no wall-clock exemption.
        src = "import time\n\ndef now() -> float:\n    return time.time()\n"
        assert "SIM001" in codes(src, "repro.obs.stream")
        assert "SIM001" in codes(src, "repro.obs.slo")
        assert "SIM001" in codes(src, "repro.obs.report")


class TestSIM002UnseededRandomness:
    def test_flags_random_module(self):
        src = "import random\n\ndef draw() -> float:\n    return random.random()\n"
        assert "SIM002" in codes(src, "repro.workload.generator")

    def test_flags_np_random_free_functions(self):
        src = "import numpy as np\n\ndef draw() -> float:\n    return float(np.random.rand())\n"
        assert "SIM002" in codes(src, "repro.workload.generator")

    def test_flags_unseeded_default_rng(self):
        src = "import numpy as np\n\ndef rng() -> object:\n    return np.random.default_rng()\n"
        assert "SIM002" in codes(src, "repro.sim.rng.extras")

    def test_allows_seeded_default_rng(self):
        src = "import numpy as np\n\ndef rng(seed: int) -> object:\n    return np.random.default_rng(seed)\n"
        assert "SIM002" not in codes(src, "repro.workload.generator")

    def test_rng_module_is_exempt(self):
        src = "import numpy as np\n\ndef rng() -> object:\n    return np.random.default_rng()\n"
        assert "SIM002" not in codes(src, "repro.sim.rng")


class TestSIM003FloatEquality:
    def test_flags_float_equality(self):
        src = "def same(a: float, b: float) -> bool:\n    return a / 3.0 == b\n"
        assert "SIM003" in codes(src, "repro.core.planner")

    def test_flags_not_equal(self):
        src = "def diff(a: float) -> bool:\n    return a * 0.1 != 0.3\n"
        assert "SIM003" in codes(src, "repro.power.models")

    def test_allows_int_comparison(self):
        src = "def empty(n: int) -> bool:\n    return n == 0\n"
        assert "SIM003" not in codes(src, "repro.core.planner")

    def test_allows_infinity_sentinel(self):
        # Comparing against float("inf") is exact, not a rounding hazard.
        src = 'def unset(w: float) -> bool:\n    return w == float("inf")\n'
        assert "SIM003" not in codes(src, "repro.core.planner")

    def test_not_applied_outside_numeric_layers(self):
        src = "def same(a: float, b: float) -> bool:\n    return a / 3.0 == b\n"
        assert "SIM003" not in codes(src, "repro.cli")


class TestSIM004Layering:
    def test_sim_layer_cannot_import_server(self):
        src = "from repro.server.harness import SimulationHarness\n"
        assert "SIM004" in codes(src, "repro.sim.engine")

    def test_obs_layer_cannot_import_core(self):
        src = "from repro.core.ge import GEScheduler\n"
        assert "SIM004" in codes(src, "repro.obs.tracer")

    def test_type_checking_imports_are_exempt(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.server.machine import MulticoreServer\n"
        )
        assert "SIM004" not in codes(src, "repro.obs.timeline")

    def test_cli_is_unrestricted(self):
        src = "from repro.server.harness import SimulationHarness\n"
        assert "SIM004" not in codes(src, "repro.cli")

    def test_allowed_import_passes(self):
        src = "from repro.errors import SimulationError\n"
        assert "SIM004" not in codes(src, "repro.sim.engine")


class TestSIM004FleetConfinement:
    def test_bus_module_allowlisted_for_wall_clock(self):
        # The telemetry bus stamps messages and tracks worker liveness
        # against the host clock — fleet metadata, not simulated time.
        from repro.check.rules import SIM001_MODULE_ALLOWLIST

        assert "repro.obs.bus" in SIM001_MODULE_ALLOWLIST
        src = "import time\n\ndef stamp() -> float:\n    return time.time()\n"
        assert "SIM001" not in codes(src, "repro.obs.bus")

    def test_core_cannot_import_fleet(self):
        src = "from repro.experiments.fleet import run_fleet\n"
        assert "SIM004" in codes(src, "repro.core.ge")

    def test_sim_cannot_import_bus(self):
        src = "from repro.obs.bus import BusSender\n"
        assert "SIM004" in codes(src, "repro.sim.engine")

    def test_obs_siblings_cannot_import_bus(self):
        # Even inside repro.obs (where plain layering would allow it),
        # only the fleet side may depend on the bus.
        src = "from repro.obs.bus import FleetAggregator\n"
        assert "SIM004" in codes(src, "repro.obs.stream")

    def test_submodule_spelling_is_caught(self):
        src = "from repro.obs import bus\n"
        assert "SIM004" in codes(src, "repro.metrics.collector")

    def test_experiments_and_cli_may_import_fleet(self):
        src = (
            "from repro.experiments.fleet import run_fleet\n"
            "from repro.obs.bus import BusSender\n"
        )
        assert "SIM004" not in codes(src, "repro.experiments.runner")
        assert "SIM004" not in codes(src, "repro.cli")
        assert "SIM004" not in codes(src, "repro.experiments.fleet")

    def test_multiprocessing_confined_to_fleet_modules(self):
        src = "import multiprocessing\n"
        assert "SIM004" in codes(src, "repro.cli")
        assert "SIM004" in codes(src, "repro.sim.engine")
        assert "SIM004" in codes(src, "repro.experiments.runner")
        assert "SIM004" not in codes(src, "repro.experiments.fleet")
        assert "SIM004" not in codes(src, "repro.obs.bus")

    def test_multiprocessing_from_import_and_submodule(self):
        assert "SIM004" in codes(
            "from multiprocessing import Queue\n", "repro.obs.stream"
        )
        assert "SIM004" in codes(
            "import multiprocessing.pool\n", "repro.workload.generator"
        )

    def test_type_checking_multiprocessing_is_exempt(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import multiprocessing\n"
        )
        assert "SIM004" not in codes(src, "repro.obs.stream")

    def test_streaming_telemetry_stays_unexempt(self):
        # The fixture pins that the bus exemption did not leak onto the
        # simulated-time telemetry modules.
        from repro.check.rules import SIM001_MODULE_ALLOWLIST

        src = "import time\n\ndef now() -> float:\n    return time.time()\n"
        for module in ("repro.obs.stream", "repro.obs.slo", "repro.obs.tracer"):
            assert module not in SIM001_MODULE_ALLOWLIST
            assert "SIM001" in codes(src, module)


class TestSIM005FrozenConfigMutation:
    def test_flags_object_setattr_on_config(self):
        src = (
            "def poke(config: object) -> None:\n"
            "    object.__setattr__(config, 'seed', 7)\n"
        )
        assert "SIM005" in codes(src, "repro.experiments.runner")

    def test_flags_field_assignment(self):
        src = "def poke(config: object) -> None:\n    config.seed = 7\n"
        assert "SIM005" in codes(src, "repro.experiments.runner")

    def test_allows_with_overrides(self):
        src = "def bump(config):\n    return config.with_overrides(seed=7)\n"
        assert "SIM005" not in codes(src, "repro.experiments.runner")

    def test_allows_non_config_attribute(self):
        src = "def poke(config: object) -> None:\n    config.notes = 'x'\n"
        assert "SIM005" not in codes(src, "repro.experiments.runner")


class TestSIM006Annotations:
    def test_flags_unannotated_param(self):
        src = "def f(x) -> int:\n    return 1\n"
        assert "SIM006" in codes(src, "repro.core.planner")

    def test_flags_missing_return(self):
        src = "def f(x: int):\n    return x\n"
        assert "SIM006" in codes(src, "repro.core.planner")

    def test_private_functions_are_exempt(self):
        src = "def _f(x):\n    return x\n"
        assert "SIM006" not in codes(src, "repro.core.planner")

    def test_init_return_is_implied(self):
        src = (
            "class A:\n"
            "    def __init__(self, x: int):\n"
            "        self.x = x\n"
        )
        assert "SIM006" not in codes(src, "repro.core.planner")

    def test_fully_annotated_passes(self):
        src = "def f(x: int, *, y: float = 0.0) -> float:\n    return x + y\n"
        assert "SIM006" not in codes(src, "repro.core.planner")


class TestSIM007Print:
    def test_flags_print_in_library_code(self):
        src = "def f() -> None:\n    print('hi')\n"
        assert "SIM007" in codes(src, "repro.core.ge")

    def test_cli_may_print(self):
        src = "def f() -> None:\n    print('hi')\n"
        assert "SIM007" not in codes(src, "repro.cli")


class TestSIM008SilentExcept:
    def test_flags_bare_except_pass(self):
        src = (
            "def f() -> None:\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert "SIM008" in codes(src, "repro.core.ge")

    def test_handled_except_passes(self):
        src = (
            "def f() -> int:\n"
            "    try:\n"
            "        return g()\n"
            "    except ValueError:\n"
            "        return 0\n"
        )
        assert "SIM008" not in codes(src, "repro.core.ge")


class TestSIM009UnorderedIteration:
    def test_flags_for_loop_over_set(self):
        src = (
            "def dispatch(ready: set) -> list:\n"
            "    order = []\n"
            "    for jid in ready:\n"
            "        order.append(jid)\n"
            "    return order\n"
        )
        assert "SIM009" in codes(src, "repro.core.ge")

    def test_flags_set_literal_comprehension(self):
        src = "def f(jobs):\n    return [j for j in {jobs[0], jobs[1]}]\n"
        assert "SIM009" in codes(src, "repro.sim.engine")

    def test_flags_list_materialization_of_set(self):
        src = "def f() -> list:\n    pending = set()\n    return list(pending)\n"
        assert "SIM009" in codes(src, "repro.core.planner")

    def test_flags_set_arithmetic_results(self):
        src = (
            "def f(a: set, b: set) -> list:\n"
            "    return [x for x in a | b]\n"
        )
        assert "SIM009" in codes(src, "repro.core.assignment")

    def test_flags_set_typed_attribute(self):
        src = (
            "class S:\n"
            "    def __init__(self) -> None:\n"
            "        self.ready = set()\n"
            "\n"
            "    def order(self) -> list:\n"
            "        return [j for j in self.ready]\n"
        )
        assert "SIM009" in codes(src, "repro.core.ge")

    def test_sorted_iteration_passes(self):
        src = (
            "def dispatch(ready: set) -> list:\n"
            "    return [jid for jid in sorted(ready)]\n"
        )
        assert "SIM009" not in codes(src, "repro.core.ge")

    def test_membership_tests_pass(self):
        # Only *iteration order* is nondeterministic; lookups are fine.
        src = (
            "def f(ready: set, jid: int) -> bool:\n"
            "    return jid in ready\n"
        )
        assert "SIM009" not in codes(src, "repro.core.ge")

    def test_dict_iteration_passes(self):
        # Dicts preserve insertion order — deterministic per seed.
        src = "def f(table: dict) -> list:\n    return [k for k in table]\n"
        assert "SIM009" not in codes(src, "repro.core.ge")

    def test_not_applied_outside_scheduling_layers(self):
        src = (
            "def f(names: set) -> list:\n"
            "    return [n for n in names]\n"
        )
        assert "SIM009" not in codes(src, "repro.obs.stream")

    def test_inline_suppression(self):
        src = (
            "def dispatch(ready: set) -> list:\n"
            "    return [j for j in ready]  # simlint: ignore[SIM009]\n"
        )
        assert "SIM009" not in codes(src, "repro.core.ge")


class TestSuppressions:
    def test_inline_ignore_silences_one_code(self):
        src = "import time\n\ndef now() -> float:\n    return time.time()  # simlint: ignore[SIM001]\n"
        assert codes(src, "repro.sim.engine") == []

    def test_inline_ignore_is_code_specific(self):
        src = "import time\n\ndef now() -> float:\n    return time.time()  # simlint: ignore[SIM003]\n"
        assert "SIM001" in codes(src, "repro.sim.engine")

    def test_bare_ignore_silences_all(self):
        src = "import time\n\ndef now():\n    return time.time()  # simlint: ignore\n"
        assert codes(src, "repro.sim.engine") == ["SIM006"]

    def test_skip_file_pragma(self):
        src = "# simlint: skip-file\nimport time\n\ndef now():\n    return time.time()\n"
        assert codes(src, "repro.sim.engine") == []


class TestSelection:
    def test_select_restricts_rules(self):
        src = "import time\n\ndef f(x):\n    return time.time()\n"
        found = lint_source(
            src, module="repro.sim.engine", path="x.py", select={"SIM006"}
        )
        assert [f.code for f in found] == ["SIM006"]

    def test_ignore_removes_rules(self):
        src = "import time\n\ndef f(x):\n    return time.time()\n"
        found = lint_source(
            src, module="repro.sim.engine", path="x.py", ignore={"SIM006"}
        )
        assert [f.code for f in found] == ["SIM001"]


class TestFindingFormat:
    def test_format_is_path_line_col_code(self):
        src = "def f(x):\n    return x\n"
        finding = lint_source(src, module="repro.core.planner", path="p.py")[0]
        text = finding.format()
        assert text.startswith("p.py:1:")
        assert "SIM006" in text

    def test_to_dict_round_trips_fields(self):
        src = "def f(x):\n    return x\n"
        d = lint_source(src, module="repro.core.planner", path="p.py")[0].to_dict()
        assert d["code"] == "SIM006"
        assert d["path"] == "p.py"
        assert d["line"] == 1
