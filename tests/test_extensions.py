"""Tests for extension features beyond the paper's configuration:
static power accounting and alternative quality-function shapes."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.errors import ConfigurationError
from repro.quality.functions import (
    ExponentialQuality,
    LinearQuality,
    LogQuality,
    PowerQuality,
)
from repro.server.harness import SimulationHarness


class TestStaticPower:
    def test_default_static_energy_is_zero(self):
        cfg = SimulationConfig(arrival_rate=100.0, horizon=3.0, seed=1)
        result = SimulationHarness(cfg, make_ge()).run()
        assert result.static_energy == 0.0
        assert result.total_energy == result.energy

    def test_static_energy_accounts_all_cores_for_whole_run(self):
        cfg = SimulationConfig(
            arrival_rate=100.0, horizon=3.0, seed=1, static_power_per_core=2.0
        )
        result = SimulationHarness(cfg, make_ge()).run()
        assert result.static_energy == pytest.approx(2.0 * 16 * result.duration)
        assert result.total_energy == pytest.approx(result.energy + result.static_energy)

    def test_static_power_flips_core_count_tradeoff(self):
        """The paper's Fig. 11 caveat: with static power, more cores stop
        being free — total energy grows with m once dynamic savings are
        exhausted."""
        def total(m):
            cfg = SimulationConfig(
                arrival_rate=100.0, horizon=3.0, seed=1, m=m,
                static_power_per_core=10.0,
            )
            return SimulationHarness(cfg, make_ge()).run().total_energy

        assert total(64) > total(16)

    def test_negative_static_power_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(static_power_per_core=-1.0)


class TestQualityShapes:
    @pytest.mark.parametrize(
        "shape,expected",
        [
            ("exponential", ExponentialQuality),
            ("log", LogQuality),
            ("power", PowerQuality),
            ("linear", LinearQuality),
        ],
    )
    def test_shape_selects_function(self, shape, expected):
        cfg = SimulationConfig(quality_shape=shape, quality_c=0.5)
        assert isinstance(cfg.quality_function(), expected)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(quality_shape="cubic")

    def test_ge_meets_target_under_log_quality(self):
        cfg = SimulationConfig(
            arrival_rate=110.0, horizon=4.0, seed=2,
            quality_shape="log", quality_c=0.01,
        )
        result = SimulationHarness(cfg, make_ge()).run()
        assert result.quality == pytest.approx(0.9, abs=0.02)

    def test_linear_quality_gives_no_cutting_leverage(self):
        """With linear quality, cutting to Q=0.9 removes only ~10 % of
        the volume (no diminishing returns to exploit), so GE's energy
        advantage shrinks — the boundary case of the paper's premise."""
        concave = SimulationConfig(arrival_rate=110.0, horizon=4.0, seed=2)
        linear = concave.with_overrides(quality_shape="linear")
        r_concave = SimulationHarness(concave, make_ge()).run()
        r_linear = SimulationHarness(linear, make_ge()).run()
        assert r_linear.quality == pytest.approx(0.9, abs=0.02)
        # Concave cutting removes much more volume at the same quality.
        assert r_concave.completed_volume < r_linear.completed_volume
