"""Tests for the simulation harness (queue, deadlines, settlement)."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SchedulingError
from repro.server.core import Segment
from repro.server.harness import SimulationHarness
from repro.server.scheduler import Scheduler
from repro.workload.generator import StaticWorkload
from repro.workload.job import Job, JobOutcome


class DoNothing(Scheduler):
    """Never schedules anything: every job must expire as DROPPED."""

    name = "NOOP"

    def on_arrival(self, job):
        pass

    def on_core_idle(self, core_index):
        pass


class GreedyOne(Scheduler):
    """Assigns each arriving job to core 0 at full remaining volume."""

    name = "GREEDY"

    def on_arrival(self, job):
        self.harness.take_from_queue(job)
        job.assign(0)
        speed = self.harness.model.speed_for_throughput(
            job.remaining / (job.deadline - self.harness.sim.now)
        )
        self.harness.machine.cores[0].enqueue(
            Segment(job=job, volume=job.remaining, speed=speed)
        )

    def on_core_idle(self, core_index):
        pass


def tiny(jobs, **overrides) -> SimulationHarness:
    cfg = SimulationConfig(
        arrival_rate=100.0, horizon=1.0, m=2, seed=1, **overrides
    )
    scheduler = overrides.pop("scheduler", None)
    return SimulationHarness(cfg, scheduler or DoNothing(), workload=StaticWorkload(jobs))


def test_unscheduled_jobs_drop_at_deadline():
    jobs = [Job(jid=0, arrival=0.1, deadline=0.25, demand=100.0)]
    harness = tiny(jobs)
    result = harness.run()
    assert result.jobs == 1
    assert result.outcomes == {JobOutcome.DROPPED.value: 1}
    assert result.quality == 0.0
    assert result.energy == 0.0


def test_scheduled_job_completes_and_counts():
    jobs = [Job(jid=0, arrival=0.0, deadline=0.2, demand=100.0)]
    cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=2, seed=1)
    harness = SimulationHarness(cfg, GreedyOne(), workload=StaticWorkload(jobs))
    result = harness.run()
    assert result.outcomes == {JobOutcome.COMPLETED.value: 1}
    assert result.quality == pytest.approx(1.0)
    assert result.energy > 0.0


def test_every_job_settles_exactly_once():
    jobs = [
        Job(jid=i, arrival=0.01 * i, deadline=0.01 * i + 0.15, demand=150.0)
        for i in range(20)
    ]
    cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=2, seed=1)
    harness = SimulationHarness(cfg, GreedyOne(), workload=StaticWorkload(jobs))
    result = harness.run()
    assert result.jobs == 20
    assert sum(result.outcomes.values()) == 20


def test_harness_cannot_run_twice():
    harness = tiny([Job(jid=0, arrival=0.0, deadline=0.1, demand=10.0)])
    harness.run()
    with pytest.raises(SchedulingError):
        harness.run()


def test_take_from_queue_unknown_job_raises():
    harness = tiny([Job(jid=0, arrival=0.5, deadline=0.6, demand=10.0)])
    with pytest.raises(SchedulingError):
        harness.take_from_queue(Job(jid=99, arrival=0.0, deadline=1.0, demand=1.0))


def test_settle_job_records_once():
    job = Job(jid=0, arrival=0.0, deadline=0.5, demand=100.0)
    harness = tiny([job])

    class SettleOnArrival(DoNothing):
        def on_arrival(self, j):
            self.harness.take_from_queue(j)
            self.harness.settle_job(j, JobOutcome.DROPPED)

    cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=2, seed=1)
    harness = SimulationHarness(cfg, SettleOnArrival(), workload=StaticWorkload([job]))
    result = harness.run()
    assert result.outcomes == {JobOutcome.DROPPED.value: 1}


def test_monitor_quality_matches_outcomes():
    jobs = [
        Job(jid=0, arrival=0.0, deadline=0.2, demand=100.0),
        Job(jid=1, arrival=0.3, deadline=0.5, demand=100.0),
    ]
    cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=2, seed=1)
    harness = SimulationHarness(cfg, GreedyOne(), workload=StaticWorkload(jobs))
    result = harness.run()
    assert result.quality == pytest.approx(1.0)


def test_partial_progress_at_deadline_counts_as_expired():
    # Demand 1000 due in 0.15 s needs 6.67 GHz; GreedyOne plans that
    # speed... so use a demand the core cannot finish: pin speed via a
    # scheduler that deliberately undershoots.
    class SlowPoke(DoNothing):
        def on_arrival(self, job):
            self.harness.take_from_queue(job)
            job.assign(0)
            self.harness.machine.cores[0].enqueue(
                Segment(job=job, volume=job.remaining, speed=0.1, final=True)
            )

    job = Job(jid=0, arrival=0.0, deadline=0.5, demand=1000.0)
    cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=2, seed=1)
    harness = SimulationHarness(cfg, SlowPoke(), workload=StaticWorkload([job]))
    result = harness.run()
    assert result.outcomes == {JobOutcome.EXPIRED.value: 1}
    # 0.5 s at 0.1 GHz = 50 units of progress.
    assert 0.0 < result.quality < 1.0
