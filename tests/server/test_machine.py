"""Tests for the multicore server measurements."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.server.core import Segment
from repro.server.machine import MulticoreServer
from repro.sim.engine import Simulator
from repro.workload.job import Job


def job(jid=1, deadline=10.0, demand=4000.0):
    return Job(jid=jid, arrival=0.0, deadline=deadline, demand=demand)


def test_paper_capacity_figures():
    sim = Simulator()
    server = MulticoreServer(sim, m=16, budget=320.0)
    assert server.equal_share_speed == pytest.approx(2.0)
    assert server.equal_share_capacity == pytest.approx(32000.0)


def test_energy_is_sum_of_core_integrals():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j1, j2 = job(1), job(2)
    # Core 0: 2 GHz for 2 s (20 W) = 40 J; core 1: 1 GHz for 1 s (5 W) = 5 J.
    server.cores[0].set_plan([Segment(job=j1, volume=4000.0, speed=2.0)])
    server.cores[1].set_plan([Segment(job=j2, volume=1000.0, speed=1.0, final=False)])
    sim.run(until=4.0)
    assert server.energy(4.0) == pytest.approx(45.0)


def test_instantaneous_power():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j = job()
    server.cores[0].set_plan([Segment(job=j, volume=4000.0, speed=2.0)])
    assert server.instantaneous_power() == pytest.approx(20.0)


def test_mean_speed_and_variance():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j1, j2 = job(1), job(2)
    # Both cores busy on [0,1]: speeds (2, 1) -> var 0.25.
    server.cores[0].set_plan([Segment(job=j1, volume=2000.0, speed=2.0, final=False)])
    server.cores[1].set_plan([Segment(job=j2, volume=1000.0, speed=1.0, final=False)])
    sim.run(until=1.0)
    assert server.mean_speed(1.0) == pytest.approx(1.5)
    assert server.speed_variance(1.0) == pytest.approx(0.25)


def test_speed_variance_time_weighted():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j = job()
    # Core 0 at 2 GHz on [0,1], both idle on [1,2]:
    # var = 1 on [0,1], 0 on [1,2] -> average 0.5.
    server.cores[0].set_plan([Segment(job=j, volume=2000.0, speed=2.0, final=False)])
    sim.run(until=2.0)
    assert server.speed_variance(2.0) == pytest.approx(0.5)


def test_utilization():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j = job()
    server.cores[0].set_plan([Segment(job=j, volume=2000.0, speed=2.0, final=False)])
    sim.run(until=2.0)
    # One of two cores busy for half the window: 0.25.
    assert server.utilization(2.0) == pytest.approx(0.25)


def test_total_completed_volume():
    sim = Simulator()
    server = MulticoreServer(sim, m=2, budget=40.0)
    j1, j2 = job(1), job(2)
    server.cores[0].set_plan([Segment(job=j1, volume=500.0, speed=1.0)])
    server.cores[1].set_plan([Segment(job=j2, volume=300.0, speed=1.0)])
    sim.run()
    assert server.total_completed_volume() == pytest.approx(800.0)


def test_invalid_configuration():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        MulticoreServer(sim, m=0)
    with pytest.raises(ConfigurationError):
        MulticoreServer(sim, budget=0.0)


def test_zero_span_measurements():
    sim = Simulator()
    server = MulticoreServer(sim, m=2)
    assert server.speed_variance(0.0) == 0.0
    assert server.utilization(0.0) == 0.0
