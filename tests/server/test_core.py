"""Tests for the core execution engine (segments, interrupts, energy)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.server.core import Core, Segment
from repro.sim.engine import Simulator
from repro.workload.job import Job, JobOutcome


def make_core(sim, **kw):
    settled = []
    idles = []
    core = Core(
        0,
        sim,
        on_idle=idles.append,
        on_settle=settled.append,
        **kw,
    )
    return core, settled, idles


def job(jid=1, deadline=10.0, demand=1000.0):
    return Job(jid=jid, arrival=0.0, deadline=deadline, demand=demand)


def test_segment_executes_and_settles_completed():
    sim = Simulator()
    core, settled, idles = make_core(sim)
    j = job()
    core.set_plan([Segment(job=j, volume=1000.0, speed=1.0)])
    sim.run()
    # 1000 units at 1 GHz (1000 u/s) takes 1 second.
    assert sim.now == pytest.approx(1.0)
    assert j.outcome is JobOutcome.COMPLETED
    assert settled == [j]
    assert idles == [0]


def test_partial_segment_settles_cut():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job(demand=1000.0)
    core.set_plan([Segment(job=j, volume=400.0, speed=2.0)])
    sim.run()
    assert j.outcome is JobOutcome.CUT
    assert j.processed == pytest.approx(400.0)


def test_non_final_segment_leaves_job_live():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job()
    core.set_plan([Segment(job=j, volume=400.0, speed=2.0, final=False)])
    sim.run()
    assert not j.settled
    assert j.processed == pytest.approx(400.0)
    assert settled == []


def test_segments_run_in_order():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j1, j2 = job(1), job(2)
    core.set_plan(
        [Segment(job=j1, volume=500.0, speed=1.0), Segment(job=j2, volume=500.0, speed=0.5)]
    )
    sim.run()
    assert [j.jid for j in settled] == [1, 2]
    assert sim.now == pytest.approx(0.5 + 1.0)


def test_replan_credits_in_flight_progress():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job()
    core.set_plan([Segment(job=j, volume=1000.0, speed=1.0)])

    def replan():
        core.checkpoint()  # credit in-flight progress first
        core.set_plan([Segment(job=j, volume=j.remaining, speed=2.0)])

    sim.schedule(0.25, replan)
    sim.run()
    assert j.outcome is JobOutcome.COMPLETED
    # 250 units at 1 GHz, then 750 at 2 GHz: 0.25 + 0.375 s.
    assert sim.now == pytest.approx(0.625)


def test_checkpoint_pauses_and_credits():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job()
    core.set_plan([Segment(job=j, volume=1000.0, speed=1.0)])

    def checkpoint():
        core.checkpoint()
        assert j.processed == pytest.approx(500.0)
        assert not core.busy

    sim.schedule(0.5, checkpoint)
    sim.run()
    assert not j.settled  # paused, never resumed
    assert j.processed == pytest.approx(500.0)


def test_abort_job_removes_current_and_queued():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j1, j2 = job(1), job(2)
    core.set_plan(
        [Segment(job=j1, volume=1000.0, speed=1.0), Segment(job=j2, volume=100.0, speed=1.0)]
    )

    def abort():
        credited = core.abort_job(j1)
        assert credited == pytest.approx(300.0)

    sim.schedule(0.3, abort)
    sim.run()
    assert not j1.settled
    assert j1.processed == pytest.approx(300.0)
    assert j2.settled  # next segment ran (CUT: 100 of 1000 units)
    assert j2.processed == pytest.approx(100.0)


def test_speed_timeline_and_energy():
    sim = Simulator()
    core, _, _ = make_core(sim)
    j = job()
    core.set_plan([Segment(job=j, volume=1000.0, speed=2.0)])
    sim.run(until=1.0)
    tl = core.speed_timeline
    # 0.5 s at 2 GHz then idle.
    assert tl.integral(1.0) == pytest.approx(1.0)
    assert tl.time_average(1.0) == pytest.approx(1.0)
    assert core.completed_volume == pytest.approx(1000.0)


def test_segment_skipped_if_job_already_settled():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job()
    j.settle(JobOutcome.DROPPED)
    core.set_plan([Segment(job=j, volume=100.0, speed=1.0)])
    sim.run()
    assert settled == []
    assert core.completed_volume == 0.0


def test_segment_skipped_if_deadline_passed():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    core, settled, _ = make_core(sim)
    j = job(deadline=4.0)
    core.set_plan([Segment(job=j, volume=100.0, speed=1.0)])
    sim.run()
    assert not j.settled
    assert core.completed_volume == 0.0


def test_invalid_segments_rejected():
    j = job()
    with pytest.raises(SchedulingError):
        Segment(job=j, volume=0.0, speed=1.0)
    with pytest.raises(SchedulingError):
        Segment(job=j, volume=10.0, speed=0.0)


def test_enqueue_starts_idle_core():
    sim = Simulator()
    core, settled, _ = make_core(sim)
    j = job()
    core.enqueue(Segment(job=j, volume=100.0, speed=1.0))
    assert core.busy
    sim.run()
    assert j.settled


def test_planned_volume_tracks_remaining():
    sim = Simulator()
    core, _, _ = make_core(sim)
    j = job()
    core.set_plan(
        [Segment(job=j, volume=600.0, speed=1.0), Segment(job=j, volume=200.0, speed=1.0, final=False)]
    )
    assert core.planned_volume(j) == pytest.approx(800.0)
    assert core.pending_jobs() == [j]
    assert core.has_work
