"""Tests for JSONL/CSV export: the round-trip must be exact."""

from __future__ import annotations

import json

from repro.obs.export import (
    read_jsonl,
    trace_records,
    write_jsonl,
    write_spans_csv,
    write_timeline_csv,
)
from repro.obs.tracer import Tracer
from repro.workload.job import Job, JobOutcome


def build_tracer() -> Tracer:
    tr = Tracer()
    tr.run_started(0.0, scheduler="GE", arrival_rate=150.0, seed=7)
    job = Job(jid=1, arrival=0.0, deadline=0.15, demand=192.0)
    tr.job_arrived(job, 0.0)
    tr.job_assigned(job, core=2, time=0.01)
    span = tr.exec_start(job, core=2, speed=1.75, volume=100.0, time=0.01)
    tr.exec_end(span, time=0.067, done=100.0)
    tr.scheduler_event("mode_switch", 0.05, **{"from": "aes", "to": "bq"})
    job.processed = 100.0
    job.settle(JobOutcome.CUT)
    tr.job_settled(job, 0.067)
    tr.metrics.counter("scheduler.rounds").inc(3)
    tr.metrics.histogram("scheduler.batch_size", bound=64).observe(5)
    # A hand-rolled sample avoids needing a machine here.
    from repro.obs.timeline import TimelineSample

    tr.samples.append(TimelineSample(time=0.5, core=0, speed=1.75,
                                     power=15.3125, energy=7.65625))
    tr.meta["end"] = 0.5
    return tr


class TestJsonlRoundTrip:
    def test_round_trip_is_identical(self, tmp_path):
        tr = build_tracer()
        trace = tr.to_trace()
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(trace, path)
        assert lines == len(list(trace_records(trace)))
        restored = read_jsonl(path)
        assert restored == trace
        assert restored.spans == trace.spans
        assert restored.events == trace.events
        assert restored.samples == trace.samples
        assert restored.metrics == trace.metrics
        assert restored.meta == trace.meta

    def test_every_line_is_self_describing_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(build_tracer(), path)
        types = set()
        for line in path.read_text().splitlines():
            record = json.loads(line)
            types.add(record["type"])
        assert types == {"meta", "span", "event", "sample", "metric"}

    def test_spans_and_events_interleaved_by_seq(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(build_tracer(), path)
        seqs = [
            json.loads(line)["seq"]
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] in ("span", "event")
        ]
        assert seqs == sorted(seqs)

    def test_blank_lines_ignored(self, tmp_path):
        tr = build_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tr, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_jsonl(path) == tr.to_trace()

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"mystery"}\n')
        try:
            read_jsonl(path)
        except ValueError as err:
            assert "mystery" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_accepts_tracer_directly(self, tmp_path):
        tr = build_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tr, path)  # Tracer, not Trace
        assert read_jsonl(path) == tr.to_trace()


class TestCsvExport:
    def test_timeline_csv(self, tmp_path):
        path = tmp_path / "timeline.csv"
        rows = write_timeline_csv(build_tracer(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "time,core,speed_ghz,power_w,energy_j"
        assert len(lines) == rows + 1

    def test_spans_csv(self, tmp_path):
        path = tmp_path / "spans.csv"
        rows = write_spans_csv(build_tracer(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "span_id,parent_id,name,start,end,attrs"
        assert len(lines) == rows + 1
        assert rows == 2  # one job span, one exec span
