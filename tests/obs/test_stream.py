"""Streaming telemetry: exactness, determinism across sinks, flat memory.

Pins the tentpole acceptance properties of :mod:`repro.obs.stream`:

* a run is bit-identical under ``NULL_TRACER``, the buffering
  ``Tracer`` and the ``StreamingTracer`` (tracing never perturbs);
* online aggregates equal the offline fold of the full tracer's
  records AND of the streaming sink's own spill file, exactly —
  including the P² sketches, which are pure functions of the
  observation sequence;
* telemetry memory is flat versus horizon for the streaming sink
  (bounded window rows + capped mode intervals) while the buffering
  tracer's grows linearly, measured through the bench ``--mem`` path.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.obs import (
    StreamingTracer,
    Tracer,
    fold_records,
    iter_jsonl,
    read_jsonl,
)
from repro.obs.stream import MAX_MODE_INTERVALS, WindowSeries
from repro.server.harness import SimulationHarness


def run_with(config, tracer):
    result = SimulationHarness(config, make_ge(), tracer=tracer).run()
    return result, tracer


@pytest.fixture(scope="module")
def ge_run():
    """One GE run recorded by both sinks (shared across tests)."""
    config = SimulationConfig(arrival_rate=150.0, horizon=5.0, seed=7)
    plain = SimulationHarness(config, make_ge()).run()
    full_result, full = run_with(config, Tracer())
    stream_result, stream = run_with(config, StreamingTracer())
    return {
        "config": config,
        "plain": plain,
        "full_result": full_result,
        "full": full,
        "stream_result": stream_result,
        "stream": stream,
    }


class TestWindowSeries:
    def test_tumbling_rows(self):
        s = WindowSeries("x", width=1.0)
        for t, v in ((0.1, 1.0), (0.4, 3.0), (1.2, 5.0), (2.5, 7.0)):
            s.observe(t, v)
        s.finish(3.0)
        assert [r["start"] for r in s.rows] == [0.0, 1.0, 2.0]
        first = s.rows[0]
        assert first["count"] == 2 and first["sum"] == 4.0
        assert first["min"] == 1.0 and first["max"] == 3.0
        assert first["last"] == 3.0 and first["mean"] == 2.0

    def test_empty_windows_produce_no_rows(self):
        s = WindowSeries("x", width=1.0)
        s.observe(0.5, 1.0)
        s.observe(9.5, 2.0)
        s.finish(10.0)
        assert [r["start"] for r in s.rows] == [0.0, 9.0]

    def test_row_count_is_bounded_by_elapsed_over_width(self):
        s = WindowSeries("x", width=2.0)
        for i in range(10_000):
            s.observe(i * 0.01, float(i))
        s.finish(100.0)
        assert len(s.rows) <= 51

    def test_sliding_window_equals_pane_fold(self):
        s = WindowSeries("x", width=2.0, slide=1.0)
        for t, v in ((0.5, 1.0), (1.5, 3.0), (2.5, 5.0)):
            s.observe(t, v)
        s.finish(3.0)
        # Window [0,2) completes when pane 2 opens; [1,3) at finish.
        spans = [(r["start"], r["end"], r["sum"]) for r in s.rows]
        assert (0.0, 2.0, 4.0) in spans
        assert (1.0, 3.0, 8.0) in spans

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            WindowSeries("x", width=0.0)
        with pytest.raises(ValueError):
            WindowSeries("x", width=1.0, slide=2.0)
        with pytest.raises(ValueError):
            WindowSeries("x", width=1.0, slide=0.3)


class TestSinkDeterminism:
    def test_run_results_bit_identical_across_sinks(self, ge_run):
        # NULL_TRACER (plain) vs full Tracer vs StreamingTracer: the
        # frozen RunResult must match field-for-field, float-for-float.
        assert ge_run["full_result"] == ge_run["plain"]
        assert ge_run["stream_result"] == ge_run["plain"]

    def test_streaming_tracer_retains_no_records(self, ge_run):
        stream = ge_run["stream"]
        assert stream.spans == [] and stream.events == [] and stream.samples == []
        counts = stream.aggregator.record_counts
        assert counts["span"] > 0 and counts["event"] > 0 and counts["sample"] > 0

    def test_online_equals_offline_fold_of_full_trace(self, ge_run):
        # The windowed aggregates, mode intervals, utilization, SLO
        # summary and record counts recomputed from the buffering
        # tracer's records must equal the online ones EXACTLY — not
        # approximately.  This includes the P² quantile estimates: the
        # sketch is a pure function of the observation sequence.
        offline = fold_records(ge_run["full"].to_trace())
        online = ge_run["stream"].aggregator
        assert offline.snapshot() == online.snapshot()
        assert (
            offline.registry.snapshot()["stream.reschedule_gap_s"]
            == online.registry.snapshot()["stream.reschedule_gap_s"]
        )

    def test_online_equals_offline_fold_of_spill_file(self, tmp_path):
        config = SimulationConfig(arrival_rate=150.0, horizon=4.0, seed=3)
        spill = tmp_path / "trace.jsonl"
        tracer = StreamingTracer(spill_path=str(spill))
        SimulationHarness(config, make_ge(), tracer=tracer).run()
        assert tracer.spilled_records > 0
        offline = fold_records(iter_jsonl(spill))
        assert offline.snapshot() == tracer.aggregator.snapshot()

    def test_spill_file_is_a_readable_trace(self, tmp_path):
        config = SimulationConfig(arrival_rate=150.0, horizon=3.0, seed=5)
        spill = tmp_path / "trace.jsonl"
        full = Tracer()
        SimulationHarness(config, make_ge(), tracer=full).run()
        stream = StreamingTracer(spill_path=str(spill))
        SimulationHarness(config, make_ge(), tracer=stream).run()
        trace = read_jsonl(spill)
        reference = full.to_trace()
        # Same record population (spill order is close-order, and the
        # streaming sink additionally spills slo_violation events).
        assert len(trace.spans) == len(reference.spans)
        assert len(trace.samples) == len(reference.samples)
        extra = [e for e in trace.events if e.kind == "slo_violation"]
        assert len(trace.events) == len(reference.events) + len(extra)
        assert {s.span_id for s in trace.spans} == {
            s.span_id for s in reference.spans
        }
        assert "slo" in trace.meta

    def test_mode_totals_match_full_trace_intervals(self, ge_run):
        from repro.obs import mode_intervals

        intervals = mode_intervals(ge_run["full"].to_trace())
        agg = ge_run["stream"].aggregator
        totals = agg.mode_totals
        aes = sum(i.duration for i in intervals if i.mode == "aes")
        bq = sum(i.duration for i in intervals if i.mode == "bq")
        assert totals["aes_s"] == pytest.approx(aes, abs=1e-9)
        assert totals["bq_s"] == pytest.approx(bq, abs=1e-9)
        assert totals["switches"] == len(intervals) - 1

    def test_mode_interval_cap_is_not_silent(self):
        from repro.obs.stream import StreamAggregator

        agg = StreamAggregator()
        agg.start({"start": 0.0, "horizon": 100.0})
        for i in range(2 * MAX_MODE_INTERVALS + 2):
            agg.on_event(
                float(i),
                "decision",
                {"mode": "aes" if i % 2 == 0 else "bq",
                 "monitor_quality": 0.95, "batch_size": 1},
            )
        agg.finish(float(2 * MAX_MODE_INTERVALS + 2))
        assert len(agg.mode_intervals) == MAX_MODE_INTERVALS
        assert agg.mode_totals["intervals_dropped"] > 0
        total = agg.mode_totals["aes_s"] + agg.mode_totals["bq_s"]
        assert total == pytest.approx(2 * MAX_MODE_INTERVALS + 2, abs=1e-9)


class TestFlatMemory:
    def test_streaming_memory_flat_vs_horizon_while_full_grows(self):
        # Acceptance property, measured through the bench --mem path:
        # GE at 4x the horizon keeps streaming telemetry memory within
        # 10% of the 1x run, while the buffering tracer's memory scales
        # with the horizon.  The scenario pins quantum=0.1 so the
        # sampled series saturate their fixed row caps already at the
        # 1x horizon (width >= quantum); below saturation the caps are
        # still *filling*, which is bounded but not yet flat.
        from repro.core.ge import make_ge as ge_factory
        from repro.experiments.bench import TRACERS, BenchScenario, run_scenario
        from repro.experiments.runner import scaled_config

        scenario = BenchScenario(
            name="ge_mem",
            description="flat-memory acceptance scenario",
            factory=ge_factory,
            config=lambda scale, seed: scaled_config(
                scale, seed, arrival_rate=150.0, quantum=0.1
            ),
        )

        def telemetry_kb(tracer, scale):
            record = run_scenario(
                scenario, scale=scale, mem=True, tracer_factory=TRACERS[tracer]
            )
            assert record["telemetry_kb"] is not None
            return record["telemetry_kb"]

        stream_1x = telemetry_kb("stream", 0.01)
        stream_4x = telemetry_kb("stream", 0.04)
        assert stream_4x <= 1.10 * stream_1x, (
            f"streaming telemetry grew {stream_1x:.1f} -> {stream_4x:.1f} KiB"
        )
        full_1x = telemetry_kb("full", 0.01)
        full_4x = telemetry_kb("full", 0.04)
        assert full_4x >= 2.5 * full_1x, (
            f"buffering tracer unexpectedly flat: "
            f"{full_1x:.1f} -> {full_4x:.1f} KiB"
        )
        # And the streaming sink is far below the buffering one at 4x.
        assert stream_4x < 0.25 * full_4x
