"""The fleet telemetry bus: schema, drop accounting, the aggregator fold."""

from __future__ import annotations

import queue

import pytest

from repro.errors import ReproError
from repro.obs.bus import (
    BUS_SCHEMA,
    DROPPABLE_TYPES,
    MESSAGE_TYPES,
    BusSender,
    FleetAggregator,
    cross_run_quantiles,
    make_message,
    validate_message,
)


def result_payload(scenario, *, quality, energy, compliant=True,
                   headroom=None, events=100, wall_s=0.5):
    """A minimal result-message payload shaped like execute_task's."""
    slo = {"compliant": compliant, "slos": {}}
    if headroom is not None:
        slo["slos"]["power_budget"] = {
            "observed": {"headroom_min_w": headroom}
        }
    return {
        "task": {"scenario": scenario},
        "result": {"quality": quality, "energy": energy},
        "summary": {"slo": slo},
        "events": events,
        "wall_s": wall_s,
    }


class TestMessageSchema:
    def test_make_message_envelope(self):
        msg = make_message("hello", worker=3, seq=0, payload={"pid": 42})
        assert msg["schema"] == BUS_SCHEMA
        assert msg["type"] == "hello"
        assert msg["worker"] == 3 and msg["seq"] == 0
        assert msg["task"] is None
        assert msg["payload"] == {"pid": 42}
        assert msg["sent_unix"] > 0

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown bus message type"):
            make_message("gossip", worker=0, seq=0)

    def test_validate_round_trip(self):
        msg = make_message("result", worker=0, seq=1, task="k")
        assert validate_message(msg) is msg

    def test_validate_rejects_schema_skew(self):
        msg = make_message("result", worker=0, seq=0)
        msg["schema"] = "repro.bus/999"
        with pytest.raises(ReproError, match="unsupported bus schema"):
            validate_message(msg)

    def test_validate_rejects_malformed(self):
        msg = make_message("result", worker=0, seq=0)
        bad = dict(msg, worker="zero")
        with pytest.raises(ReproError, match="integer worker id"):
            validate_message(bad)
        bad = dict(msg, payload=None)
        with pytest.raises(ReproError, match="payload dict"):
            validate_message(bad)

    def test_droppable_is_subset_of_types(self):
        assert DROPPABLE_TYPES < set(MESSAGE_TYPES)


class TestBusSender:
    def test_sequence_numbers_increment(self):
        q = queue.Queue()
        sender = BusSender(q, worker=1)
        sender.send("hello")
        sender.send("progress", task="k")
        assert [q.get_nowait()["seq"] for _ in range(2)] == [0, 1]

    def test_droppable_overflow_is_counted_not_raised(self):
        q = queue.Queue(maxsize=2)
        sender = BusSender(q, worker=0)
        assert sender.send("snapshot", task="k") is True
        assert sender.send("snapshot", task="k") is True
        # Queue full: droppable telemetry is discarded with accounting.
        assert sender.send("snapshot", task="k") is False
        assert sender.send("slo_violation", task="k") is False
        assert sender.drop_counts() == {"snapshot": 1, "slo_violation": 1}
        assert sender.sent == {"snapshot": 2}

    def test_reliable_overflow_raises(self):
        q = queue.Queue(maxsize=1)
        sender = BusSender(q, worker=0, timeout=0.05)
        sender.send("hello")
        with pytest.raises(ReproError, match="aggregator alive"):
            sender.send("result", task="k")
        assert sender.drop_counts() == {"result": 1}

    def test_reliable_override_on_droppable_type(self):
        q = queue.Queue(maxsize=1)
        sender = BusSender(q, worker=0, timeout=0.05)
        sender.send("hello")
        # The task-start marker is shipped reliably for crash attribution.
        with pytest.raises(ReproError):
            sender.send("progress", task="k", payload={"phase": "start"},
                        reliable=True)


class TestCrossRunQuantiles:
    def test_empty_and_single(self):
        assert cross_run_quantiles([]) == {}
        assert cross_run_quantiles([2.0]) == {"p50": 2.0, "p90": 2.0}

    def test_interpolated_and_order_free(self):
        forward = cross_run_quantiles([1.0, 2.0, 3.0, 4.0])
        assert forward["p50"] == pytest.approx(2.5)
        assert forward["p90"] == pytest.approx(3.7)
        assert cross_run_quantiles([4.0, 1.0, 3.0, 2.0]) == forward


class TestFleetAggregator:
    def feed(self, agg, sender, q):
        while True:
            try:
                agg.on_message(q.get_nowait(), now=1000.0)
            except queue.Empty:
                return

    def test_full_lifecycle_fold(self):
        agg = FleetAggregator()
        q = queue.Queue()
        sender = BusSender(q, worker=0)
        sender.send("hello", payload={"pid": 99})
        sender.send("progress", task="a", payload={"phase": "start"},
                    reliable=True)
        sender.send("snapshot", task="a", payload={"t": 1.0})
        sender.send("slo_violation", task="a", payload={"slo": "quality_floor"})
        sender.send("result", task="a",
                    payload=result_payload("ge_light", quality=0.9, energy=10.0))
        sender.send("bye", payload={"dropped": {"snapshot": 2}})
        self.feed(agg, sender, q)

        state = agg.workers[0]
        assert state.pid == 99 and state.said_hello and state.said_bye
        assert state.tasks_done == 1 and state.current_task is None
        assert agg.results["a"]["worker"] == 0
        assert agg.snapshots["a"]["snapshot"] == {"t": 1.0}
        assert agg.violations[0]["task"] == "a"
        assert agg.dropped_total() == {"snapshot": 2}

    def test_error_message_becomes_record(self):
        agg = FleetAggregator()
        msg = make_message("error", worker=2, seq=0, task="bad", payload={
            "exception": "RuntimeError('boom')",
            "traceback": "Traceback ...",
            "task": {"scenario": "ge_light"},
        })
        agg.on_message(msg, now=0.0)
        (record,) = agg.errors
        assert record["kind"] == "exception"
        assert record["task"] == "bad" and record["worker"] == 2
        assert "boom" in record["exception"]
        assert agg.workers[2].tasks_failed == 1

    def test_worker_death_synthesizes_error_for_in_flight_task(self):
        agg = FleetAggregator()
        agg.on_message(make_message("hello", worker=0, seq=0), now=0.0)
        agg.on_message(
            make_message("progress", worker=0, seq=1, task="doomed",
                         payload={"phase": "start"}),
            now=0.0,
        )
        record = agg.mark_worker_dead(0, exitcode=43, now=1.0)
        assert record is not None and record["kind"] == "worker-death"
        assert record["task"] == "doomed"
        assert "exitcode 43" in record["exception"]
        assert agg.errors == [record]
        assert agg.workers[0].exitcode == 43

    def test_clean_death_after_bye_is_not_an_error(self):
        agg = FleetAggregator()
        agg.on_message(make_message("hello", worker=0, seq=0), now=0.0)
        agg.on_message(make_message("bye", worker=0, seq=1), now=0.0)
        assert agg.mark_worker_dead(0, exitcode=0, now=1.0) is None
        assert agg.errors == []

    def test_mark_task_unrun(self):
        agg = FleetAggregator()
        record = agg.mark_task_unrun("ghost", "no surviving worker")
        assert record["kind"] == "unrun" and record["worker"] is None
        assert agg.errors == [record]

    def test_stale_workers_watchdog(self):
        agg = FleetAggregator()
        agg.on_message(make_message("hello", worker=0, seq=0), now=100.0)
        agg.on_message(make_message("hello", worker=1, seq=0), now=130.0)
        agg.on_message(make_message("bye", worker=2, seq=0), now=50.0)
        assert agg.stale_workers(now=131.0, timeout=30.0) == [0]
        # A worker that said bye is never stale, however old.
        assert 2 not in agg.stale_workers(now=1000.0, timeout=1.0)

    def test_rollup_scenario_and_quantile_shape(self):
        agg = FleetAggregator()
        q = queue.Queue()
        sender = BusSender(q, worker=0)
        sender.send("hello")
        for key, quality, energy, compliant in (
            ("a", 0.8, 10.0, True), ("b", 0.9, 12.0, False),
        ):
            sender.send("result", task=key, payload=result_payload(
                "ge_light", quality=quality, energy=energy,
                compliant=compliant, headroom=5.0))
        sender.send("result", task="c", payload=result_payload(
            "ge_nominal", quality=0.7, energy=20.0))
        sender.send("bye")
        self.feed(agg, sender, q)
        agg.mark_task_unrun("d", "never ran")

        rollup = agg.rollup()
        assert rollup["tasks"] == {"total": 4, "succeeded": 3, "failed": 1}
        light = rollup["scenarios"]["ge_light"]
        assert light["tasks"] == 2
        assert light["slo_compliant"] == 1 and light["slo_evaluated"] == 2
        assert light["quality_min"] == 0.8 and light["quality_max"] == 0.9
        assert light["quality_mean"] == pytest.approx(0.85)
        assert light["energy_sum"] == pytest.approx(22.0)
        assert rollup["throughput"]["events"] == 300
        assert rollup["throughput"]["events_per_sec"] > 0
        assert rollup["quantiles"]["quality"]["p50"] == pytest.approx(0.8)
        assert rollup["quantiles"]["power_headroom_min_w"]["p50"] == 5.0
        assert rollup["workers"]["0"]["tasks_done"] == 3
