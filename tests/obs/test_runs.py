"""Run registry: content addressing, store round-trips, diffing, report."""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_be, make_ge
from repro.errors import ReproError
from repro.obs import (
    RunStore,
    StreamingTracer,
    diff_runs,
    format_diff,
    format_run,
    format_runs_table,
    make_summary,
    run_id_for,
    write_report,
)
from repro.obs.runs import RUN_SCHEMA
from repro.server.harness import SimulationHarness


def stored_summary(config, factory, *, spill=None):
    """Run once under the streaming sink; return (summary_doc, result)."""
    from dataclasses import asdict

    tracer = StreamingTracer(spill_path=str(spill) if spill else None)
    result = SimulationHarness(config, factory(), tracer=tracer).run()
    return make_summary(tracer.summary(), result=asdict(result)), result


@pytest.fixture(scope="module")
def ge_doc():
    config = SimulationConfig(arrival_rate=150.0, horizon=4.0, seed=11)
    return stored_summary(config, make_ge)[0]


class TestRunIdentity:
    def test_run_id_shape(self, ge_doc):
        meta = ge_doc["meta"]
        run_id = run_id_for(meta)
        assert run_id == ge_doc["run_id"]
        assert run_id.startswith(meta["config_fingerprint"])
        assert run_id.endswith("-11-ge")

    def test_run_id_requires_fingerprint(self):
        with pytest.raises(ReproError, match="config_fingerprint"):
            run_id_for({"seed": 1, "scheduler": "GE"})

    def test_make_summary_layout(self, ge_doc):
        assert ge_doc["schema"] == RUN_SCHEMA
        assert "meta" in ge_doc and "meta" not in ge_doc["telemetry"]
        assert ge_doc["result"]["jobs"] > 0
        assert ge_doc["telemetry"]["slo"]["schema"] == "repro.slo/1"
        # The doc must already be JSON-serializable (the store dumps it).
        json.dumps(ge_doc)


class TestRunStore:
    def test_save_load_round_trip(self, tmp_path, ge_doc):
        store = RunStore(tmp_path / "runs")
        run_id = store.save(ge_doc)
        loaded = store.load(run_id)
        assert loaded["run_id"] == run_id
        assert loaded["result"] == ge_doc["result"]
        assert loaded["created_unix"] > 0

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "envroot"))
        assert RunStore().root == tmp_path / "envroot"

    def test_prefix_resolution(self, tmp_path, ge_doc):
        store = RunStore(tmp_path)
        run_id = store.save(ge_doc)
        assert store.resolve(run_id[:6]) == run_id
        with pytest.raises(ReproError, match="no stored run"):
            store.resolve("zzzz")

    def test_ambiguous_prefix_rejected(self, tmp_path, ge_doc):
        store = RunStore(tmp_path)
        a = dict(ge_doc, run_id="aaa-1-ge")
        b = dict(ge_doc, run_id="aaa-2-ge")
        store.save(a)
        store.save(b)
        with pytest.raises(ReproError, match="ambiguous"):
            store.resolve("aaa")

    def test_overwrite_is_idempotent(self, tmp_path, ge_doc):
        store = RunStore(tmp_path)
        assert store.save(ge_doc) == store.save(ge_doc)
        assert store.ids() == [ge_doc["run_id"]]

    def test_trace_copied_into_entry(self, tmp_path):
        config = SimulationConfig(arrival_rate=150.0, horizon=2.0, seed=2)
        spill = tmp_path / "spill.jsonl"
        doc, _ = stored_summary(config, make_ge, spill=spill)
        store = RunStore(tmp_path / "runs")
        run_id = store.save(doc, trace_path=spill)
        stored = store.trace_path(run_id)
        assert stored is not None
        assert stored.read_bytes() == spill.read_bytes()

    def test_list_rows_and_delete(self, tmp_path, ge_doc):
        store = RunStore(tmp_path)
        run_id = store.save(ge_doc)
        rows = store.list()
        assert len(rows) == 1
        row = rows[0]
        assert row["run_id"] == run_id
        assert row["scheduler"] == ge_doc["meta"]["scheduler"]
        assert row["quality"] == ge_doc["result"]["quality"]
        assert row["slo_compliant"] is not None and not row["has_trace"]
        store.delete(run_id)
        assert store.ids() == []

    def test_load_rejects_foreign_schema(self, tmp_path):
        store = RunStore(tmp_path)
        bad = store.path_for("bad-run")
        bad.mkdir(parents=True)
        (bad / "summary.json").write_text('{"schema": "other/9"}')
        with pytest.raises(ReproError, match="unsupported run schema"):
            store.load("bad-run")


class TestListOrderingAndGc:
    def seeded_store(self, tmp_path, ge_doc, ids):
        """A store with the given run ids, stamped strictly older→newer."""
        store = RunStore(tmp_path)
        for age, run_id in enumerate(ids):
            store.save(dict(ge_doc, run_id=run_id))
            # Rewrite the stamp so ordering is unambiguous even on
            # coarse clocks: later saves are strictly newer.
            path = store.path_for(run_id) / "summary.json"
            doc = json.loads(path.read_text())
            doc["created_unix"] = 1000.0 + age
            path.write_text(json.dumps(doc))
        return store

    def test_list_orders_newest_first_with_id_tiebreak(self, tmp_path, ge_doc):
        store = self.seeded_store(tmp_path, ge_doc, ["old-1-ge", "new-1-ge"])
        # Force a timestamp tie to exercise the id tie-break.
        for run_id in ("tie-b-ge", "tie-a-ge"):
            store.save(dict(ge_doc, run_id=run_id))
            path = store.path_for(run_id) / "summary.json"
            doc = json.loads(path.read_text())
            doc["created_unix"] = 2000.0
            path.write_text(json.dumps(doc))
        ordered = [row["run_id"] for row in store.list()]
        assert ordered == ["tie-a-ge", "tie-b-ge", "new-1-ge", "old-1-ge"]
        assert all("schema" in row for row in store.list())

    def test_gc_keeps_newest(self, tmp_path, ge_doc):
        store = self.seeded_store(
            tmp_path, ge_doc, ["a-1-ge", "b-1-ge", "c-1-ge"]
        )
        deleted = store.gc(1)
        assert deleted == ["b-1-ge", "a-1-ge"]
        assert store.ids() == ["c-1-ge"]

    def test_gc_pins_survive_and_do_not_count(self, tmp_path, ge_doc):
        store = self.seeded_store(
            tmp_path, ge_doc, ["a-1-ge", "b-1-ge", "c-1-ge"]
        )
        # Pin the oldest (by unique prefix): it survives, and `keep`
        # still applies to the remaining two.
        deleted = store.gc(1, pin=["a-1"])
        assert deleted == ["b-1-ge"]
        assert store.ids() == ["a-1-ge", "c-1-ge"]

    def test_gc_keep_zero_and_validation(self, tmp_path, ge_doc):
        store = self.seeded_store(tmp_path, ge_doc, ["a-1-ge", "b-1-ge"])
        with pytest.raises(ReproError, match="keep count"):
            store.gc(-1)
        assert store.gc(0) == ["b-1-ge", "a-1-ge"]
        assert store.ids() == []


class TestFleetSchema:
    @pytest.fixture(scope="class")
    def fleet_doc(self, tmp_path_factory):
        from repro.experiments.fleet import run_sequential
        from repro.experiments.registry import fleet_grid

        runs_dir = tmp_path_factory.mktemp("fleet-store")
        fleet = run_sequential(
            fleet_grid(["ge_light"], [1], scale=0.005),
            runs_dir=str(runs_dir),
        )
        return fleet, runs_dir

    def test_store_round_trips_fleet_documents(self, fleet_doc):
        from repro.obs.runs import FLEET_SCHEMA

        fleet, runs_dir = fleet_doc
        store = RunStore(runs_dir)
        loaded = store.load(fleet.fleet_id)
        assert loaded["schema"] == FLEET_SCHEMA
        rows = {row["run_id"]: row for row in store.list()}
        assert rows[fleet.fleet_id]["schema"] == FLEET_SCHEMA
        assert rows[fleet.fleet_id]["scheduler"] == "fleet"

    def test_format_fleet_renders(self, fleet_doc):
        from repro.obs.runs import format_fleet

        fleet, _ = fleet_doc
        text = format_fleet(fleet.summary)
        assert fleet.fleet_id in text
        assert "ge_light" in text
        assert "tasks: 1 total" in text and "throughput:" in text


class TestDiffAndRendering:
    @pytest.fixture(scope="class")
    def pair(self, ge_doc):
        config = SimulationConfig(arrival_rate=150.0, horizon=4.0, seed=11)
        be_doc, _ = stored_summary(config, make_be)
        return ge_doc, be_doc

    def test_diff_sections(self, pair):
        ge_doc, be_doc = pair
        diff = diff_runs(ge_doc, be_doc)
        assert diff["runs"] == {"a": ge_doc["run_id"], "b": be_doc["run_id"]}
        assert diff["meta"]["scheduler"] == {
            "a": ge_doc["meta"]["scheduler"], "b": be_doc["meta"]["scheduler"],
        }
        quality = diff["result"]["quality"]
        assert quality["delta"] == pytest.approx(quality["b"] - quality["a"])
        assert "quality_floor" in diff["slo"] or "deadline_miss" in diff["slo"]

    def test_diff_of_identical_runs_is_quiet(self, ge_doc):
        diff = diff_runs(ge_doc, ge_doc)
        assert diff["meta"] == {} and diff["counters"] == {}
        assert all(row["delta"] == 0 for row in diff["result"].values()
                   if "delta" in row)

    def test_format_helpers_render(self, pair, tmp_path):
        ge_doc, be_doc = pair
        store = RunStore(tmp_path)
        store.save(ge_doc)
        store.save(be_doc)
        table = format_runs_table(store.list())
        assert ge_doc["run_id"] in table and be_doc["run_id"] in table
        shown = format_run(ge_doc)
        assert "quality_floor" in shown and "slo:" in shown
        rendered = format_diff(diff_runs(ge_doc, be_doc))
        assert "→" in rendered
        assert format_runs_table([]) == "no stored runs"

    def test_write_report_on_stored_summary(self, ge_doc, tmp_path):
        out = tmp_path / "report.html"
        size = write_report(ge_doc, out)
        html = out.read_text(encoding="utf-8")
        assert size == len(html.encode("utf-8"))
        for section in ("SLO compliance", "Mode timeline", "Quality",
                        "Per-core utilization", "<svg"):
            assert section in html
