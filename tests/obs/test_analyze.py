"""Tests for trace analysis: mode intervals, utilization, summaries."""

from __future__ import annotations

import pytest

from repro.obs.analyze import (
    core_utilization,
    job_stats,
    mode_intervals,
    summarize,
)
from repro.obs.spans import EventRecord, SpanRecord
from repro.obs.timeline import TimelineSample
from repro.obs.tracer import Trace


def decision(time, mode, seq):
    return EventRecord(
        time=time, kind="decision", seq=seq,
        attrs={"mode": mode, "policy": "ES", "batch_size": 1,
               "active_jobs": 1, "monitor_quality": 0.9, "caps": [20.0]},
    )


def build_trace() -> Trace:
    job = SpanRecord(span_id=0, name="job", start=0.0, seq=0,
                     attrs={"jid": 1, "demand": 100.0})
    job.close(0.4, outcome="cut", processed=80.0)
    ex0 = SpanRecord(span_id=1, name="exec", start=0.0, seq=1, parent_id=0,
                     attrs={"jid": 1, "core": 0, "speed": 2.0, "volume": 50.0})
    ex0.close(0.2, done=50.0)
    ex1 = SpanRecord(span_id=2, name="exec", start=0.2, seq=2, parent_id=0,
                     attrs={"jid": 1, "core": 1, "speed": 1.0, "volume": 30.0})
    ex1.close(0.5, done=30.0)
    events = [
        decision(0.0, "aes", 3),
        decision(0.25, "aes", 4),
        decision(0.5, "bq", 5),
        decision(0.75, "aes", 6),
    ]
    samples = [
        TimelineSample(time=0.5, core=0, speed=2.0, power=20.0, energy=4.0),
        TimelineSample(time=1.0, core=0, speed=0.0, power=0.0, energy=4.0),
        TimelineSample(time=1.0, core=1, speed=0.0, power=0.0, energy=1.5),
    ]
    return Trace(
        meta={"scheduler": "GE", "start": 0.0, "end": 1.0, "arrival_rate": 150.0,
              "seed": 1},
        spans=[job, ex0, ex1],
        events=events,
        samples=samples,
        metrics={"scheduler.rounds": {"kind": "counter", "value": 4.0}},
    )


class TestModeIntervals:
    def test_intervals_merge_consecutive_modes(self):
        intervals = mode_intervals(build_trace())
        assert [(i.start, i.end, i.mode) for i in intervals] == [
            (0.0, 0.5, "aes"),
            (0.5, 0.75, "bq"),
            (0.75, 1.0, "aes"),  # extends to meta["end"]
        ]

    def test_durations(self):
        intervals = mode_intervals(build_trace())
        assert sum(i.duration for i in intervals) == pytest.approx(1.0)

    def test_empty_trace(self):
        assert mode_intervals(Trace()) == []


class TestCoreUtilization:
    def test_per_core_breakdown(self):
        cores = core_utilization(build_trace())
        assert set(cores) == {0, 1}
        assert cores[0]["busy"] == pytest.approx(0.2)
        assert cores[0]["utilization"] == pytest.approx(0.2)
        assert cores[0]["volume"] == pytest.approx(50.0)
        assert cores[0]["energy"] == pytest.approx(4.0)  # last sample wins
        assert cores[1]["busy"] == pytest.approx(0.3)
        assert cores[1]["slices"] == 1


class TestJobStats:
    def test_grouped_by_outcome(self):
        stats = job_stats(build_trace())
        assert set(stats) == {"cut"}
        assert stats["cut"]["count"] == 1
        assert stats["cut"]["mean_sojourn"] == pytest.approx(0.4)
        assert stats["cut"]["mean_processed_fraction"] == pytest.approx(0.8)


class TestSummarize:
    def test_mentions_every_section(self):
        text = summarize(build_trace())
        assert "trace: GE" in text
        assert "jobs (1 settled)" in text
        assert "modes:" in text
        assert "cores:" in text
        assert "scheduler.rounds" in text

    def test_empty_trace_does_not_crash(self):
        assert "records: 0 spans" in summarize(Trace())
