"""End-to-end tracing of real simulation runs."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_ge
from repro.obs import Tracer, read_jsonl, write_jsonl
from repro.server.harness import SimulationHarness


@pytest.fixture(scope="module")
def traced_run():
    """One traced GE run shared by the assertions below."""
    config = SimulationConfig(arrival_rate=150.0, horizon=4.0, seed=3)
    tracer = Tracer()
    scheduler = make_ge()
    result = SimulationHarness(config, scheduler, tracer=tracer).run()
    return config, scheduler, tracer, result


class TestJobSpans:
    def test_every_job_has_a_closed_span(self, traced_run):
        _, _, tracer, result = traced_run
        job_spans = tracer.to_trace().spans_named("job")
        assert len(job_spans) == result.jobs
        assert all(not s.open for s in job_spans)
        assert tracer.open_spans() == []

    def test_span_attrs_carry_outcome_and_volume(self, traced_run):
        _, _, tracer, result = traced_run
        trace = tracer.to_trace()
        outcomes = {}
        for span in trace.spans_named("job"):
            outcomes[span.attrs["outcome"]] = outcomes.get(span.attrs["outcome"], 0) + 1
            assert 0.0 <= span.attrs["processed"] <= span.attrs["demand"] * (1 + 1e-9)
        assert outcomes == result.outcomes

    def test_exec_slices_nest_inside_their_job_span(self, traced_run):
        _, _, tracer, _ = traced_run
        trace = tracer.to_trace()
        by_id = {s.span_id: s for s in trace.spans}
        exec_spans = trace.spans_named("exec")
        assert exec_spans, "GE run must produce execution slices"
        for ex in exec_spans:
            assert ex.parent_id is not None
            parent = by_id[ex.parent_id]
            assert parent.name == "job"
            assert parent.attrs["jid"] == ex.attrs["jid"]
            assert ex.start >= parent.start - 1e-9
            assert ex.end is not None and ex.end <= parent.end + 1e-9

    def test_lifecycle_events_are_ordered(self, traced_run):
        _, _, tracer, _ = traced_run
        trace = tracer.to_trace()
        for span in trace.spans_named("job")[:200]:
            kinds = [e.kind for e in trace.span_events(span)]
            assert kinds[0] == "enqueue"
            assert kinds[-1] == "settle"
            times = [e.time for e in trace.span_events(span)]
            assert times == sorted(times)


class TestSchedulerEvents:
    def test_mode_switches_recorded(self, traced_run):
        _, scheduler, tracer, _ = traced_run
        switches = tracer.to_trace().events_of("mode_switch")
        assert len(switches) == scheduler.controller.switches
        assert len(switches) > 0  # quality-constrained run must compensate
        for event in switches:
            assert {event.attrs["from"], event.attrs["to"]} == {"aes", "bq"}

    def test_compensation_episodes_pair_up(self, traced_run):
        _, _, tracer, _ = traced_run
        trace = tracer.to_trace()
        starts = trace.events_of("compensation_start")
        ends = trace.events_of("compensation_end")
        assert len(starts) > 0
        assert len(starts) - len(ends) in (0, 1)  # last episode may be open

    def test_decisions_match_reschedules(self, traced_run):
        _, scheduler, tracer, _ = traced_run
        decisions = tracer.to_trace().events_of("decision")
        assert len(decisions) == scheduler.reschedules
        for event in decisions[:50]:
            assert event.attrs["mode"] in ("aes", "bq")
            assert event.attrs["policy"] in ("ES", "WF")

    def test_metrics_registry_populated(self, traced_run):
        config, scheduler, tracer, _ = traced_run
        metrics = tracer.to_trace().metrics
        assert metrics["scheduler.rounds"]["value"] == scheduler.reschedules
        assert metrics["scheduler.batch_size"]["count"] == scheduler.reschedules
        assert metrics["planner.quality_opt_calls"]["value"] > 0
        assert metrics["planner.energy_opt_calls"]["value"] > 0
        assert metrics["scheduler.round_latency_ms"]["count"] == scheduler.reschedules
        assert metrics["scheduler.cut_fraction"]["max"] <= 1.0


class TestCoreTimelines:
    def test_samples_at_quantum_boundaries(self, traced_run):
        config, scheduler, tracer, result = traced_run
        trace = tracer.to_trace()
        times = sorted({s.time for s in trace.samples})
        quantum = scheduler.quantum
        # Start sample, one per quantum tick, and the final run-end sample.
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(result.duration)
        interior = times[1:-1]
        for t in interior:
            assert (t / quantum) == pytest.approx(round(t / quantum))

    def test_every_sample_instant_covers_all_cores(self, traced_run):
        config, _, tracer, _ = traced_run
        trace = tracer.to_trace()
        per_time = {}
        for s in trace.samples:
            per_time.setdefault(s.time, set()).add(s.core)
        for cores in per_time.values():
            assert cores == set(range(config.m))

    def test_cumulative_energy_matches_run_result(self, traced_run):
        _, _, tracer, result = traced_run
        trace = tracer.to_trace()
        final = {}
        for s in trace.samples:  # chronological: last write wins
            final[s.core] = s.energy
        assert sum(final.values()) == pytest.approx(result.energy, rel=1e-9)

    def test_energy_is_monotone_per_core(self, traced_run):
        _, _, tracer, _ = traced_run
        last = {}
        for s in tracer.to_trace().samples:
            assert s.energy >= last.get(s.core, 0.0) - 1e-12
            last[s.core] = s.energy


class TestRoundTripOnRealRun:
    def test_jsonl_round_trip_identical(self, traced_run, tmp_path):
        _, _, tracer, _ = traced_run
        trace = tracer.to_trace()
        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        assert read_jsonl(path) == trace
