"""Online SLO monitors: spec validation, folds, summaries, callbacks."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLO_SCHEMA, SLOSpec, SLOTracker, default_slos


def tracker_for(*specs, **kwargs):
    return SLOTracker(list(specs), **kwargs)


class TestSLOSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            SLOSpec(name="x", kind="latency", threshold=1.0)

    def test_rejects_negative_min_samples(self):
        with pytest.raises(ValueError, match="min_samples"):
            SLOSpec(name="x", kind="deadline_miss", threshold=0.1, min_samples=-1)

    def test_to_record_is_json_native(self):
        spec = SLOSpec(name="q", kind="quality_floor", threshold=0.9,
                       description="floor")
        assert spec.to_record() == {
            "kind": "quality_floor", "threshold": 0.9,
            "min_samples": 0, "description": "floor",
        }


class TestDefaultSLOs:
    def test_full_meta_installs_all_four(self):
        specs = default_slos({"q_ge": 0.85, "budget": 40.0})
        assert [s.kind for s in specs] == [
            "quality_floor", "power_budget", "deadline_miss", "bq_dwell",
        ]
        assert specs[0].threshold == 0.85
        assert specs[1].threshold == 40.0

    def test_absent_or_null_meta_omits_parameterized_slos(self):
        for meta in ({}, {"q_ge": None, "budget": None}):
            kinds = [s.kind for s in default_slos(meta)]
            assert kinds == ["deadline_miss", "bq_dwell"]


class TestTrackerValidation:
    def test_duplicate_names_rejected(self):
        spec = SLOSpec(name="a", kind="deadline_miss", threshold=0.1)
        other = SLOSpec(name="a", kind="bq_dwell", threshold=0.5)
        with pytest.raises(ValueError, match="duplicate"):
            tracker_for(spec, other)

    def test_duplicate_kinds_rejected(self):
        a = SLOSpec(name="a", kind="bq_dwell", threshold=0.5)
        b = SLOSpec(name="b", kind="bq_dwell", threshold=0.4)
        with pytest.raises(ValueError, match="share kind"):
            tracker_for(a, b)


class TestQualityFloor:
    def test_time_weighted_compliance(self):
        t = tracker_for(SLOSpec(name="q", kind="quality_floor", threshold=0.9))
        # [0,2): 0.95 (ok), [2,3): 0.80 (below), [3,4): 0.92 (ok).
        t.on_decision(0.0, mode="aes", quality=0.95)
        t.on_decision(2.0, mode="bq", quality=0.80)
        t.on_decision(3.0, mode="aes", quality=0.92)
        t.finish(4.0)
        row = t.summary()["slos"]["q"]
        assert row["compliance"] == pytest.approx(3.0 / 4.0)
        assert row["observed"]["decided_time_s"] == pytest.approx(4.0)
        assert not row["compliant"]
        assert row["first_violation"]["time"] == 2.0
        assert row["first_violation"]["value"] == 0.80

    def test_no_decisions_is_vacuously_compliant(self):
        t = tracker_for(SLOSpec(name="q", kind="quality_floor", threshold=0.9))
        t.finish(10.0)
        row = t.summary()["slos"]["q"]
        assert row["no_data"] and row["compliant"]
        assert row["compliance"] is None


class TestPowerBudget:
    def test_headroom_fraction_and_percentiles(self):
        t = tracker_for(SLOSpec(name="p", kind="power_budget", threshold=40.0))
        for i, power in enumerate((30.0, 38.0, 41.0, 35.0)):
            t.on_power(float(i), power)
        t.finish(4.0)
        row = t.summary()["slos"]["p"]
        assert row["compliance"] == pytest.approx(3.0 / 4.0)
        assert not row["compliant"]
        assert row["first_violation"]["value"] == 41.0
        assert row["observed"]["headroom_min_w"] == pytest.approx(-1.0)
        assert row["observed"]["headroom_max_w"] == pytest.approx(10.0)
        assert "headroom_p50_w" in row["observed"]

    def test_float_noise_overshoot_tolerated(self):
        t = tracker_for(SLOSpec(name="p", kind="power_budget", threshold=40.0))
        t.on_power(0.0, 40.0 + 1e-9)  # water-filling rounding, not a breach
        t.finish(1.0)
        row = t.summary()["slos"]["p"]
        assert row["compliant"] and row["compliance"] == 1.0

    def test_sketch_registers_in_supplied_registry(self):
        reg = MetricsRegistry()
        t = tracker_for(
            SLOSpec(name="p", kind="power_budget", threshold=40.0),
            registry=reg,
        )
        t.on_power(0.0, 30.0)
        assert "slo.power_headroom_w" in reg.snapshot()


class TestDeadlineMiss:
    def test_min_samples_suppresses_early_violation(self):
        spec = SLOSpec(name="d", kind="deadline_miss", threshold=0.1,
                       min_samples=5)
        t = tracker_for(spec)
        t.on_settle(0.1, outcome="expired")  # 1/1 missed — under min_samples
        assert t.summary()["slos"]["d"]["compliant"]
        for i in range(4):
            t.on_settle(0.2 + i, outcome="completed")
        # 1/5 = 0.2 > 0.1, now past min_samples.
        t.finish(5.0)
        row = t.summary()["slos"]["d"]
        assert not row["compliant"]
        assert row["compliance"] == pytest.approx(0.8)
        assert row["observed"] == {"settled": 5, "missed": 1, "miss_rate": 0.2}

    def test_dropped_counts_as_miss(self):
        spec = SLOSpec(name="d", kind="deadline_miss", threshold=0.5,
                       min_samples=1)
        t = tracker_for(spec)
        t.on_settle(0.1, outcome="dropped")
        t.finish(1.0)
        assert not t.summary()["slos"]["d"]["compliant"]


class TestBQDwell:
    def test_dwell_fraction_checked_at_finish(self):
        spec = SLOSpec(name="b", kind="bq_dwell", threshold=0.5, min_samples=1)
        t = tracker_for(spec)
        t.on_decision(0.0, mode="bq", quality=0.95)
        t.on_decision(3.0, mode="aes", quality=0.95)
        t.finish(4.0)  # 3s BQ of 4s decided = 0.75 > 0.5
        row = t.summary()["slos"]["b"]
        assert not row["compliant"]
        assert row["observed"]["bq_fraction"] == pytest.approx(0.75)
        assert row["compliance"] == pytest.approx(0.25)


class TestCallbacksAndSummary:
    def test_callback_fires_exactly_once_per_spec(self):
        fired = []
        t = tracker_for(
            SLOSpec(name="q", kind="quality_floor", threshold=0.9),
            on_violation=lambda *args: fired.append(args),
        )
        t.on_decision(0.0, mode="aes", quality=0.5)
        t.on_decision(1.0, mode="aes", quality=0.4)
        t.finish(2.0)
        assert fired == [("q", 0.0, 0.5, 0.9)]

    def test_summary_schema_and_overall_verdict(self):
        t = tracker_for(*default_slos({"q_ge": 0.85, "budget": 40.0}))
        t.on_decision(0.0, mode="aes", quality=0.95)
        t.on_power(0.5, 30.0)
        t.on_settle(0.6, outcome="completed")
        t.finish(1.0)
        summary = t.summary()
        assert summary["schema"] == SLO_SCHEMA
        assert summary["compliant"] and summary["violations"] == 0
        assert set(summary["slos"]) == {
            "quality_floor", "power_budget", "deadline_miss", "bq_dwell",
        }

    def test_finish_is_idempotent(self):
        t = tracker_for(SLOSpec(name="q", kind="quality_floor", threshold=0.9))
        t.on_decision(0.0, mode="aes", quality=0.95)
        t.finish(2.0)
        first = t.summary()
        t.finish(5.0)
        assert t.summary() == first
