"""The null tracer must be free: no events, no allocations.

Instrumented hot paths guard every trace point with
``if tracer.enabled:`` and default to the shared ``NULL_TRACER``.  This
test drives a ~10k-job run with tracing disabled and asserts that
nothing inside :mod:`repro.obs` allocated a single block (tracemalloc,
filtered to the package's files) and that the null tracer holds no
state at all.
"""

from __future__ import annotations

import tracemalloc
from pathlib import Path

import repro.obs  # noqa: F401 - imported before tracemalloc starts
from repro.baselines.queue_order import FCFS
from repro.config import SimulationConfig
from repro.obs.tracer import NULL_TRACER
from repro.server.harness import SimulationHarness

_OBS_DIR = str(Path(repro.obs.__file__).parent)


class TestNullTracerOverhead:
    def test_harness_defaults_to_null_tracer(self):
        config = SimulationConfig(arrival_rate=100.0, horizon=1.0, seed=1)
        harness = SimulationHarness(config, FCFS())
        assert harness.tracer is NULL_TRACER
        assert all(core.tracer is NULL_TRACER for core in harness.machine.cores)

    def test_10k_job_run_allocates_nothing_in_obs(self):
        config = SimulationConfig(arrival_rate=200.0, horizon=50.0, seed=5)
        harness = SimulationHarness(config, FCFS())

        obs_filter = tracemalloc.Filter(True, _OBS_DIR + "/*")
        tracemalloc.start()
        try:
            result = harness.run()
            snapshot = tracemalloc.take_snapshot().filter_traces([obs_filter])
        finally:
            tracemalloc.stop()

        assert result.jobs >= 10_000  # the run really was 10k jobs
        stats = snapshot.statistics("filename")
        assert stats == [], (
            "repro.obs allocated memory during an untraced run: "
            + "; ".join(str(s) for s in stats)
        )
        # And, trivially but explicitly: the null tracer recorded no events.
        assert not hasattr(NULL_TRACER, "__dict__")
        assert not hasattr(NULL_TRACER, "events")
        assert not hasattr(NULL_TRACER, "spans")
