"""Tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0


class TestHistogram:
    def test_stats(self):
        h = Histogram("sizes", bound=10.0, nbuckets=5)
        for v in (1.0, 3.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(13.0)
        assert h.min == 1.0
        assert h.max == 9.0
        assert h.mean == pytest.approx(13.0 / 3)

    def test_bucket_placement_and_overflow(self):
        h = Histogram("x", bound=10.0, nbuckets=5)
        h.observe(0.0)   # bucket 0
        h.observe(9.9)   # bucket 4
        h.observe(25.0)  # overflow
        assert h.buckets[0] == 1
        assert h.buckets[4] == 1
        assert h.buckets[5] == 1

    def test_overflow_underflow_counts_in_snapshot(self):
        # Out-of-range observations must be counted explicitly, not
        # silently folded into the edge buckets: overflow counts values
        # >= bound, underflow values < 0 (clamped into bucket 0).
        h = Histogram("x", bound=10.0, nbuckets=5)
        for v in (-2.0, -0.5, 5.0, 10.0, 25.0):
            h.observe(v)
        assert h.underflow == 2
        assert h.overflow == 2
        assert h.count == 5  # out-of-range values still count/total
        assert h.buckets[0] == 2  # underflow clamps into the first bucket
        assert h.buckets[-1] == 2  # overflow bucket
        snap = h.snapshot()
        assert snap["overflow"] == 2
        assert snap["underflow"] == 2
        assert snap["min"] == -2.0 and snap["max"] == 25.0

    def test_in_range_observations_leave_counts_zero(self):
        h = Histogram("x", bound=10.0, nbuckets=5)
        for v in (0.0, 5.0, 9.999):
            h.observe(v)
        assert h.overflow == 0 and h.underflow == 0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Histogram("x", bound=0.0)


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_sorted_and_json_native(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.histogram("c").observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must be JSON-serializable
        assert snap["b"] == {"kind": "counter", "value": 1.0}
