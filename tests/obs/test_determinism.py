"""Tracing must not perturb the simulation.

Pins the acceptance property: a fixed-seed GE run produces a
bit-identical :class:`RunResult` with tracing enabled vs. disabled.
The tracer only observes state (it never schedules simulator events),
so any drift here means an instrumentation point mutated the run.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_be, make_ge
from repro.obs import Tracer
from repro.server.harness import SimulationHarness


def run_result(config, factory, tracer=None):
    return SimulationHarness(config, factory(), tracer=tracer).run()


class TestTracingIsInvisible:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_ge_run_result_bit_identical(self, seed):
        config = SimulationConfig(arrival_rate=150.0, horizon=5.0, seed=seed)
        plain = run_result(config, make_ge)
        traced = run_result(config, make_ge, tracer=Tracer())
        # Field-by-field equality of the frozen dataclass: every float
        # must match exactly, not approximately.
        assert traced == plain

    def test_be_run_result_bit_identical(self):
        config = SimulationConfig(arrival_rate=180.0, horizon=4.0, seed=2)
        assert run_result(config, make_be, tracer=Tracer()) == run_result(
            config, make_be
        )

    def test_traced_runs_are_repeatable(self):
        config = SimulationConfig(arrival_rate=140.0, horizon=4.0, seed=11)
        t1, t2 = Tracer(), Tracer()
        r1 = run_result(config, make_ge, tracer=t1)
        r2 = run_result(config, make_ge, tracer=t2)
        assert r1 == r2
        a, b = t1.to_trace(), t2.to_trace()
        assert [s.to_record() for s in a.spans] == [s.to_record() for s in b.spans]
        assert [e.to_record() for e in a.events] == [e.to_record() for e in b.events]
        assert a.samples == b.samples
