"""Tests for span/event records."""

from __future__ import annotations

import pytest

from repro.obs.spans import EventRecord, SpanRecord


class TestSpanRecord:
    def test_open_then_close(self):
        span = SpanRecord(span_id=0, name="job", start=1.0, seq=0)
        assert span.open
        assert span.duration is None
        span.close(3.5, outcome="completed")
        assert not span.open
        assert span.duration == pytest.approx(2.5)
        assert span.attrs["outcome"] == "completed"

    def test_double_close_raises(self):
        span = SpanRecord(span_id=0, name="job", start=1.0, seq=0)
        span.close(2.0)
        with pytest.raises(ValueError):
            span.close(3.0)

    def test_record_round_trip(self):
        span = SpanRecord(
            span_id=3, name="exec", start=0.25, seq=7, parent_id=1,
            attrs={"core": 4, "speed": 2.0},
        )
        span.close(0.75, done=100.0)
        assert SpanRecord.from_record(span.to_record()) == span

    def test_open_span_round_trip(self):
        span = SpanRecord(span_id=0, name="job", start=0.0, seq=0)
        assert SpanRecord.from_record(span.to_record()) == span


class TestEventRecord:
    def test_record_round_trip(self):
        event = EventRecord(
            time=1.5, kind="mode_switch", seq=2,
            attrs={"from": "aes", "to": "bq"},
        )
        assert EventRecord.from_record(event.to_record()) == event

    def test_span_attachment(self):
        event = EventRecord(time=1.0, kind="assign", seq=0, span_id=5)
        record = event.to_record()
        assert record["span_id"] == 5
        assert EventRecord.from_record(record).span_id == 5
