"""Tests for the tracer: span nesting, ordering, and the null tracer."""

from __future__ import annotations

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.workload.job import Job, JobOutcome


def make_job(jid=1, arrival=0.0, deadline=1.0, demand=100.0) -> Job:
    return Job(jid=jid, arrival=arrival, deadline=deadline, demand=demand)


class TestSpanNesting:
    def test_parent_child_links(self):
        tr = Tracer()
        parent = tr.begin_span("job", 0.0, jid=1)
        child = tr.begin_span("exec", 0.1, parent=parent, core=0)
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        trace = tr.to_trace()
        assert trace.children_of(parent) == [child]

    def test_seq_is_globally_ordered(self):
        tr = Tracer()
        a = tr.begin_span("job", 0.0)
        e = tr.event("enqueue", 0.0, span=a)
        b = tr.begin_span("exec", 0.0, parent=a)
        seqs = [a.seq, e.seq, b.seq]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_span_ids_unique(self):
        tr = Tracer()
        ids = {tr.begin_span("job", float(i)).span_id for i in range(10)}
        assert len(ids) == 10


class TestJobLifecycle:
    def test_full_lifecycle(self):
        tr = Tracer()
        job = make_job()
        span = tr.job_arrived(job, 0.0)
        tr.job_assigned(job, core=3, time=0.1)
        tr.job_cut(job, target=80.0, time=0.2)
        exec_span = tr.exec_start(job, core=3, speed=2.0, volume=80.0, time=0.2)
        tr.exec_end(exec_span, time=0.24, done=80.0)
        job.processed = 80.0
        job.settle(JobOutcome.CUT)
        tr.job_settled(job, 0.24)

        assert not span.open
        assert span.attrs["outcome"] == "cut"
        assert span.attrs["processed"] == 80.0
        assert exec_span.parent_id == span.span_id
        trace = tr.to_trace()
        kinds = [e.kind for e in trace.span_events(span)]
        assert kinds == ["enqueue", "assign", "lf_cut", "settle"]
        assert tr.open_spans() == []

    def test_settle_unknown_job_is_noop(self):
        tr = Tracer()
        job = make_job()
        job.settle(JobOutcome.DROPPED)
        tr.job_settled(job, 1.0)  # never arrived through this tracer
        assert tr.spans == []
        assert tr.events == []

    def test_exec_without_job_span_is_root(self):
        tr = Tracer()
        span = tr.exec_start(make_job(), core=0, speed=1.0, volume=10.0, time=0.0)
        assert span.parent_id is None


class TestDecisionEvents:
    def test_decision_event_payload(self):
        from repro.core.decisions import Decision

        tr = Tracer()
        tr.decision(Decision(
            time=1.0, mode="aes", policy="ES", batch_size=4,
            active_jobs=9, monitor_quality=0.93, caps=(20.0, 20.0),
        ))
        (event,) = tr.events
        assert event.kind == "decision"
        assert event.attrs["mode"] == "aes"
        assert event.attrs["caps"] == [20.0, 20.0]  # JSON-native list


class TestNullTracer:
    def test_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        assert not hasattr(NULL_TRACER, "__dict__")  # __slots__: no state

    def test_all_hooks_return_none(self):
        nt = NullTracer()
        job = make_job()
        assert nt.begin_span("job", 0.0) is None
        assert nt.end_span(None, 0.0) is None
        assert nt.event("x", 0.0) is None
        assert nt.job_arrived(job, 0.0) is None
        assert nt.job_assigned(job, 0, 0.0) is None
        assert nt.job_cut(job, 1.0, 0.0) is None
        assert nt.job_settled(job, 0.0) is None
        assert nt.exec_start(job, 0, 1.0, 1.0, 0.0) is None
        assert nt.exec_end(None, 0.0, 0.0) is None
        assert nt.scheduler_event("x", 0.0) is None
        assert nt.decision(None) is None
        assert nt.sample_cores(None, 0.0) is None
        assert nt.run_started(0.0) is None
        assert nt.run_finished(None, 0.0) is None

    def test_mirrors_tracer_public_hooks(self):
        tracer_api = {
            n for n in dir(Tracer)
            if not n.startswith("_") and callable(getattr(Tracer, n))
        }
        null_api = {
            n for n in dir(NullTracer)
            if not n.startswith("_") and callable(getattr(NullTracer, n))
        }
        # Everything instrumented code may call must exist on the null twin
        # (collection-side APIs like to_trace/open_spans are tracer-only).
        hooks = tracer_api - {"to_trace", "open_spans"}
        assert hooks <= null_api
