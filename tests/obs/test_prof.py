"""Tests for the hot-path phase profiler (repro.obs.prof)."""

from __future__ import annotations

import pytest

from repro.obs import NULL_PROFILER, NullProfiler, PhaseProfiler, PhaseTimer
from repro.obs.prof import PHASE_PREFIX, _NULL_PHASE
from repro.obs.registry import MetricsRegistry


def test_phase_records_count_total_max():
    prof = PhaseProfiler()
    for _ in range(3):
        with prof.phase("unit.work"):
            pass
    timer = prof.timer("unit.work")
    assert timer.count == 3
    assert timer.total >= 0.0
    assert timer.max >= timer.mean >= 0.0


def test_phase_handle_exposes_elapsed():
    prof = PhaseProfiler()
    with prof.phase("unit.work") as handle:
        assert handle.elapsed == 0.0
    assert handle.elapsed >= 0.0
    assert handle.elapsed == prof.timer("unit.work").max


def test_phases_nest_inclusively():
    prof = PhaseProfiler()
    with prof.phase("outer"):
        with prof.phase("inner"):
            pass
    outer, inner = prof.timer("outer"), prof.timer("inner")
    assert outer.count == inner.count == 1
    # Outer time includes the inner phase (inclusive semantics).
    assert outer.total >= inner.total


def test_recursive_phase_entries_each_count():
    prof = PhaseProfiler()

    @prof.wrap("recurse")
    def fib(n: int) -> int:
        return n if n < 2 else fib(n - 1) + fib(n - 2)

    assert fib(5) == 5
    assert prof.timer("recurse").count == 15  # every recursive entry


def test_wrap_preserves_function_identity():
    prof = PhaseProfiler()

    @prof.wrap("named")
    def some_function() -> int:
        """Doc."""
        return 7

    assert some_function() == 7
    assert some_function.__name__ == "some_function"
    assert prof.timer("named").count == 1


def test_snapshot_strips_prefix_and_filters_kinds():
    registry = MetricsRegistry()
    prof = PhaseProfiler(registry)
    registry.counter("unrelated.counter").inc()
    with prof.phase("a.b"):
        pass
    snap = prof.snapshot()
    assert set(snap) == {"a.b"}
    assert snap["a.b"]["kind"] == "phase"
    assert snap["a.b"]["count"] == 1
    for key in ("total_s", "max_s", "mean_s"):
        assert key in snap["a.b"]


def test_phase_timers_ride_the_shared_registry():
    registry = MetricsRegistry()
    prof = PhaseProfiler(registry)
    with prof.phase("x"):
        pass
    assert PHASE_PREFIX + "x" in registry.names()
    assert isinstance(registry.phase_timer(PHASE_PREFIX + "x"), PhaseTimer)


def test_phase_timer_mean_of_empty_timer_is_zero():
    assert PhaseTimer("t").mean == 0.0


def test_null_profiler_is_disabled_and_allocation_free():
    assert NULL_PROFILER.enabled is False
    assert isinstance(NULL_PROFILER, NullProfiler)
    # One shared handle: no allocation per phase entry.
    assert NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b") is _NULL_PHASE
    with NULL_PROFILER.phase("a") as handle:
        assert handle.elapsed == 0.0
    assert NULL_PROFILER.snapshot() == {}


def test_null_profiler_wrap_is_identity():
    def fn() -> int:
        return 1

    assert NULL_PROFILER.wrap("x")(fn) is fn


def test_profiler_enabled_flag():
    assert PhaseProfiler().enabled is True


def test_exception_inside_phase_still_records():
    prof = PhaseProfiler()
    with pytest.raises(RuntimeError):
        with prof.phase("boom"):
            raise RuntimeError("x")
    assert prof.timer("boom").count == 1
