"""End-to-end tests of the mixed-class scheduler pipeline."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.errors import ConfigurationError
from repro.mixed import ClassAwareMonitor, MixedClassWorkload, make_mixed_ge
from repro.mixed.scheduler import MixedGEScheduler
from repro.quality.functions import ExponentialQuality, LinearQuality
from repro.server.harness import SimulationHarness
from repro.sim.rng import RandomStreams
from repro.validation import validate_run

F_SEARCH = ExponentialQuality(c=0.009, x_max=1000.0)
F_LINEAR = LinearQuality(x_max=1000.0)
FUNCTIONS = [F_SEARCH, F_LINEAR]

CFG = SimulationConfig(arrival_rate=120.0, horizon=5.0, seed=5)


def mixed_workload(fractions=(0.5, 0.5)):
    return MixedClassWorkload(
        CFG.workload(), list(fractions), streams=RandomStreams(seed=99)
    )


def run_mixed(**kwargs):
    scheduler, monitor = make_mixed_ge(FUNCTIONS, **kwargs)
    harness = SimulationHarness(CFG, scheduler, workload=mixed_workload(), monitor=monitor)
    return harness, harness.run()


class TestWorkloadStamping:
    def test_fractions_respected(self):
        wl = mixed_workload((0.25, 0.75))
        counts = wl.class_counts()
        total = sum(counts)
        assert counts[1] / total == pytest.approx(0.75, abs=0.1)

    def test_stamping_is_deterministic(self):
        a = [j.klass for j in mixed_workload().materialize()]
        b = [j.klass for j in mixed_workload().materialize()]
        assert a == b

    def test_invalid_fractions(self):
        with pytest.raises(ConfigurationError):
            MixedClassWorkload(CFG.workload(), [0.5, 0.6])


class TestMonitor:
    def test_uses_class_function(self):
        from repro.workload.job import Job, JobOutcome

        monitor = ClassAwareMonitor(FUNCTIONS)
        job = Job(jid=1, arrival=0.0, deadline=1.0, demand=500.0, klass=1)
        job.add_progress(250.0)
        job.settle(JobOutcome.CUT)
        monitor.record_job(job)
        # Linear class: 250/500 of f(500)=0.5 potential -> quality 0.5.
        assert monitor.quality == pytest.approx(0.5)

    def test_unknown_class_rejected(self):
        from repro.workload.job import Job

        monitor = ClassAwareMonitor(FUNCTIONS)
        job = Job(jid=1, arrival=0.0, deadline=1.0, demand=100.0, klass=7)
        with pytest.raises(ValueError):
            monitor.record_job(job)

    def test_needs_at_least_one_function(self):
        with pytest.raises(ValueError):
            ClassAwareMonitor([])


class TestScheduler:
    def test_meets_mixed_target(self):
        _, result = run_mixed()
        assert result.quality == pytest.approx(0.9, abs=0.02)
        assert sum(result.outcomes.values()) == result.jobs

    def test_passes_physical_audit(self):
        harness, _ = run_mixed()
        validate_run(harness).raise_if_failed()

    def test_beats_class_blind_ge(self):
        """Class-blind GE cannot target the true mixed aggregate: it
        either over-delivers (wasting energy) or undershoots.  The
        class-aware scheduler lands on target with no more energy."""
        _, aware = run_mixed()
        blind_harness = SimulationHarness(
            CFG, make_ge(), workload=mixed_workload(),
            monitor=ClassAwareMonitor(FUNCTIONS),
        )
        blind = blind_harness.run()
        assert abs(aware.quality - 0.9) <= abs(blind.quality - 0.9) + 5e-3
        assert aware.energy <= blind.energy * 1.05

    def test_requires_class_aware_monitor(self):
        scheduler = MixedGEScheduler(FUNCTIONS)
        with pytest.raises(ConfigurationError):
            SimulationHarness(CFG, scheduler, workload=mixed_workload())

    def test_needs_functions(self):
        with pytest.raises(ConfigurationError):
            MixedGEScheduler([])

    def test_deterministic(self):
        _, a = run_mixed()
        _, b = run_mixed()
        assert (a.quality, a.energy) == (b.quality, b.energy)
