"""Tests for the class-aware Quality-OPT."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality_opt import prefix_feasible, quality_opt
from repro.mixed.quality_opt import quality_opt_mixed
from repro.quality.functions import ExponentialQuality, LinearQuality

F_A = ExponentialQuality(c=0.003, x_max=1000.0)
F_B = ExponentialQuality(c=0.0009, x_max=1000.0)
F_STEEP = ExponentialQuality(c=0.009, x_max=1000.0)


def test_reduces_to_shared_quality_opt():
    """Identical functions: mixed and shared implementations agree."""
    bounds = [300.0, 200.0, 400.0]
    dls = [0.3, 0.6, 0.9]
    shared = quality_opt(bounds, dls, 0.0, 600.0)
    mixed = quality_opt_mixed([F_A] * 3, bounds, dls, 0.0, 600.0)
    assert np.allclose(shared, mixed, atol=1.0)


def test_reduces_with_offsets():
    bounds = [300.0, 300.0]
    dls = [1.0, 1.0]
    offs = [100.0, 0.0]
    shared = quality_opt(bounds, dls, 0.0, 200.0, offsets=offs)
    mixed = quality_opt_mixed([F_A, F_A], bounds, dls, 0.0, 200.0, offsets=offs)
    assert np.allclose(shared, mixed, atol=1.0)


def test_plenty_of_capacity_grants_everything():
    out = quality_opt_mixed([F_A, F_B], [100.0, 200.0], [10.0, 20.0], 0.0, 1000.0)
    assert out == pytest.approx([100.0, 200.0])


def test_zero_capacity_grants_nothing():
    out = quality_opt_mixed([F_A, F_B], [100.0, 200.0], [1.0, 2.0], 0.0, 0.0)
    assert out == pytest.approx([0.0, 0.0])


def test_scarce_capacity_equalizes_marginals():
    """Under one shared deadline the KKT optimum equalizes the marginal
    quality f'_i at the allocation — the defining property."""
    out = quality_opt_mixed([F_STEEP, F_B], [500.0, 500.0], [1.0, 1.0], 0.0, 400.0)
    assert float(np.sum(out)) == pytest.approx(400.0, rel=1e-6)
    m0 = float(F_STEEP.derivative(float(out[0])))
    m1 = float(F_B.derivative(float(out[1])))
    assert m0 == pytest.approx(m1, rel=1e-4)
    # The allocation differs across classes (it is not a volume split).
    assert abs(out[0] - out[1]) > 10.0


def test_beats_shared_f_allocation_on_mixed_objective():
    """The class-aware optimum scores at least as well as allocating
    with the (wrong) shared-f water-filling."""
    functions = [F_STEEP, F_B, F_STEEP, F_B]
    bounds = [400.0, 400.0, 300.0, 300.0]
    dls = [0.5, 0.5, 1.0, 1.0]
    cap = 500.0
    mixed = quality_opt_mixed(functions, bounds, dls, 0.0, cap)
    blind = quality_opt(bounds, dls, 0.0, cap)

    def score(x):
        return sum(float(f(v)) for f, v in zip(functions, x))

    assert score(mixed) >= score(blind) - 1e-6


def test_matches_brute_force_two_jobs():
    functions = [F_STEEP, F_B]
    bounds = [300.0, 300.0]
    dls = [0.4, 1.0]
    cap = 500.0
    out = quality_opt_mixed(functions, bounds, dls, 0.0, cap)
    val = sum(float(f(v)) for f, v in zip(functions, out))
    best = -1.0
    for x0 in np.linspace(0, 300, 61):
        for x1 in np.linspace(0, 300, 61):
            if x0 <= cap * 0.4 + 1e-9 and x0 + x1 <= cap * 1.0 + 1e-9:
                best = max(best, float(F_STEEP(x0)) + float(F_B(x1)))
    assert val >= best - 1e-3


def test_prefix_feasibility_always_holds():
    functions = [F_A, F_B, F_STEEP]
    bounds = [400.0, 350.0, 250.0]
    dls = [0.2, 0.5, 0.8]
    cap = 700.0
    out = quality_opt_mixed(functions, bounds, dls, 0.0, cap)
    assert prefix_feasible(out, cap * np.asarray(dls), rel_tol=1e-6)
    assert np.all(out <= np.asarray(bounds) + 1e-9)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        quality_opt_mixed([F_A], [1.0, 2.0], [1.0, 2.0], 0.0, 10.0)
    with pytest.raises(ValueError):
        quality_opt_mixed([F_A], [-1.0], [1.0], 0.0, 10.0)
    with pytest.raises(ValueError):
        quality_opt_mixed([F_A, F_B], [1.0, 1.0], [2.0, 1.0], 0.0, 10.0)


@settings(max_examples=30, deadline=None)
@given(
    bounds=st.lists(st.floats(min_value=0.0, max_value=400.0), min_size=1, max_size=5),
    gaps=st.lists(st.floats(min_value=0.05, max_value=0.5), min_size=5, max_size=5),
    capacity=st.floats(min_value=0.0, max_value=1500.0),
    pattern=st.integers(min_value=0, max_value=31),
)
def test_property_feasible_and_bounded(bounds, gaps, capacity, pattern):
    n = len(bounds)
    dls = list(np.cumsum(gaps[:n]))
    functions = [F_A if (pattern >> i) & 1 else F_B for i in range(n)]
    out = quality_opt_mixed(functions, bounds, dls, 0.0, capacity)
    assert np.all(out >= -1e-9)
    assert np.all(out <= np.asarray(bounds) + 1e-9)
    assert prefix_feasible(out, capacity * np.asarray(dls), rel_tol=1e-6)
