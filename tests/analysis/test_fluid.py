"""Tests for the fluid-limit analysis, including simulator cross-checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fluid import (
    energy_rate_lower_bound,
    expected_kept_volume,
    expected_quality_at_level,
    predict_cut_stats,
    waterline_for_quality,
)
from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.power.models import PowerModel
from repro.quality.functions import ExponentialQuality, LinearQuality
from repro.server.harness import SimulationHarness
from repro.workload.distributions import BoundedPareto

DIST = BoundedPareto(alpha=3.0, x_min=130.0, x_max=1000.0)
F = ExponentialQuality(c=0.003, x_max=1000.0)
MODEL = PowerModel()


class TestExpectations:
    def test_kept_volume_at_xmax_is_mean(self):
        assert expected_kept_volume(DIST, DIST.x_max) == pytest.approx(
            DIST.mean, rel=1e-6
        )

    def test_kept_volume_at_zero(self):
        assert expected_kept_volume(DIST, 0.0) == 0.0

    def test_kept_volume_below_xmin_is_level(self):
        # Every job exceeds x_min, so min(X, L) = L for L <= x_min.
        assert expected_kept_volume(DIST, 100.0) == pytest.approx(100.0, rel=1e-9)

    def test_kept_volume_monotone(self):
        levels = np.linspace(0, 1000, 20)
        kept = [expected_kept_volume(DIST, l) for l in levels]
        assert all(a <= b + 1e-9 for a, b in zip(kept, kept[1:]))

    def test_kept_volume_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = DIST.sample(rng, 400_000)
        for level in (200.0, 400.0, 800.0):
            mc = float(np.mean(np.minimum(samples, level)))
            assert expected_kept_volume(DIST, level) == pytest.approx(mc, rel=0.01)

    def test_quality_at_level_bounds(self):
        assert expected_quality_at_level(F, DIST, DIST.x_max) == pytest.approx(1.0)
        assert expected_quality_at_level(F, DIST, 0.0) == pytest.approx(0.0)


class TestWaterline:
    def test_waterline_achieves_target(self):
        for q in (0.7, 0.9, 0.95):
            level = waterline_for_quality(F, DIST, q)
            assert expected_quality_at_level(F, DIST, level) == pytest.approx(q, abs=1e-4)

    def test_waterline_monotone_in_target(self):
        l_low = waterline_for_quality(F, DIST, 0.7)
        l_high = waterline_for_quality(F, DIST, 0.95)
        assert l_low < l_high

    def test_target_one_returns_xmax(self):
        assert waterline_for_quality(F, DIST, 1.0) == DIST.x_max

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            waterline_for_quality(F, DIST, 0.0)

    def test_concavity_gives_leverage(self):
        """At Q=0.9 the concave cut keeps clearly less volume than the
        linear cut does (the paper's premise): concavity converts a 10 %
        quality allowance into a >16 % volume cut on this distribution."""
        concave = predict_cut_stats(F, DIST, 0.9)
        linear = predict_cut_stats(LinearQuality(x_max=1000.0), DIST, 0.9)
        assert concave.kept_fraction < 0.84
        assert linear.kept_fraction == pytest.approx(0.9, abs=0.02)
        assert concave.kept_fraction < linear.kept_fraction - 0.05

    def test_predict_cut_stats_consistency(self):
        stats = predict_cut_stats(F, DIST, 0.9)
        assert stats.quality == pytest.approx(0.9, abs=1e-3)
        assert 0.0 < stats.kept_volume < DIST.mean
        assert stats.kept_fraction == pytest.approx(stats.kept_volume / DIST.mean)


class TestEnergyBound:
    def test_bound_positive_and_scales_with_rate(self):
        e100 = energy_rate_lower_bound(100.0, DIST, 500.0, MODEL, 0.15)
        e200 = energy_rate_lower_bound(200.0, DIST, 500.0, MODEL, 0.15)
        assert e100 > 0
        assert e200 == pytest.approx(2 * e100, rel=1e-9)

    def test_bound_increases_with_level(self):
        lo = energy_rate_lower_bound(100.0, DIST, 200.0, MODEL, 0.15)
        hi = energy_rate_lower_bound(100.0, DIST, 1000.0, MODEL, 0.15)
        assert hi > lo

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            energy_rate_lower_bound(0.0, DIST, 500.0, MODEL, 0.15)
        with pytest.raises(ValueError):
            energy_rate_lower_bound(100.0, DIST, 500.0, MODEL, 0.0)


class TestSimulatorCrossChecks:
    """The simulator must respect the fluid predictions."""

    @pytest.fixture(scope="class")
    def run(self):
        cfg = SimulationConfig(arrival_rate=110.0, horizon=12.0, seed=17)
        return cfg, SimulationHarness(cfg, make_ge()).run()

    def test_measured_energy_above_lower_bound(self, run):
        cfg, result = run
        level = waterline_for_quality(F, DIST, cfg.q_ge)
        bound_w = energy_rate_lower_bound(
            cfg.arrival_rate, DIST, level, MODEL, cfg.window_low
        )
        measured_w = result.energy / result.duration
        assert measured_w >= bound_w * 0.95  # 5 % slack for horizon edges

    def test_measured_energy_within_factor_of_bound(self, run):
        """At light load GE should sit within ~3× of the no-contention
        bound — a regression guard against gross energy waste."""
        cfg, result = run
        level = waterline_for_quality(F, DIST, cfg.q_ge)
        bound_w = energy_rate_lower_bound(
            cfg.arrival_rate, DIST, level, MODEL, cfg.window_low
        )
        measured_w = result.energy / result.duration
        assert measured_w < 3.0 * bound_w

    def test_volume_ratio_matches_fluid_kept_fraction(self, run):
        """GE's processed-volume share converges on the fluid kept
        fraction (within stochastic/compensation slack)."""
        cfg, result = run
        stats = predict_cut_stats(F, DIST, cfg.q_ge)
        measured = result.completed_volume / (result.jobs * DIST.mean)
        assert measured == pytest.approx(stats.kept_fraction, abs=0.12)
