"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_list_prints_all_figures(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 13):
        assert f"fig{i:02d}" in out


def test_run_prints_summary_row(capsys):
    code = main(["run", "--scheduler", "GE", "--rate", "120", "--horizon", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "GE" in out
    assert "Q=" in out


def test_run_each_scheduler(capsys):
    for name in ("BE", "FCFS", "SJF", "GE-ES"):
        assert main(["run", "--scheduler", name, "--rate", "110", "--horizon", "2"]) == 0
    assert "FCFS" in capsys.readouterr().out


def test_fig_command_renders_figure(capsys):
    assert main(["fig", "2"]) == 0
    out = capsys.readouterr().out
    assert "fig02" in out
    assert "cut target" in out


def test_fig_command_with_scale(capsys):
    assert main(["fig", "1", "--scale", "0.005"]) == 0
    assert "aes_fraction" in capsys.readouterr().out


def test_unknown_scheduler_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "NOPE"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_save_and_replay(tmp_path, capsys):
    path = str(tmp_path / "trace.csv")
    assert main(["trace", "save", path, "--rate", "80", "--horizon", "2"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert main(["trace", "replay", path, "--scheduler", "FCFS"]) == 0
    assert "FCFS" in capsys.readouterr().out


def test_replicate_command(capsys):
    assert main(["replicate", "--scheduler", "GE", "--rate", "100",
                 "--horizon", "2", "--n", "2"]) == 0
    out = capsys.readouterr().out
    assert "n=2" in out and "[" in out


def test_fig_csv_export(tmp_path, capsys):
    path = tmp_path / "fig.csv"
    assert main(["fig", "2", "--csv", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# figure: fig02")
    assert "# panel: volumes" in text
    assert "job index" in text


def test_sweep_command(capsys):
    code = main(["sweep", "--schedulers", "GE,FCFS", "--rates", "100,200",
                 "--horizon", "2"])
    assert code == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if "λ=" in l]
    assert len(lines) == 4  # 2 schedulers × 2 rates
    assert any("FCFS" in l for l in lines)


def test_sweep_unknown_scheduler_errors(capsys):
    assert main(["sweep", "--schedulers", "NOPE", "--horizon", "1"]) == 2
    assert "unknown scheduler" in capsys.readouterr().out


def test_scenario_list(capsys):
    assert main(["scenario"]) == 0
    out = capsys.readouterr().out
    assert "web_search" in out and "video_rendering" in out


def test_scenario_run(capsys):
    assert main(["scenario", "process_monitoring", "--horizon", "2"]) == 0
    assert "GE" in capsys.readouterr().out


def test_scenario_unknown_raises():
    with pytest.raises(KeyError):
        main(["scenario", "nope", "--horizon", "2"])


def test_report_command_subset(tmp_path, capsys):
    out = tmp_path / "report.md"
    code = main(["report", "--scale", "0.004", "--figures", "2", "1",
                 "--out", str(out)])
    assert code == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "fig02" in text and "fig01" in text
    assert "```" in text


def test_custom_run_parameters(capsys):
    code = main(
        ["run", "--scheduler", "GE", "--rate", "100", "--horizon", "2",
         "--cores", "8", "--budget", "160", "--q-ge", "0.85"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Q=0.8" in out  # lands near the 0.85 target


def test_trace_telemetry_mode_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(["trace", "--scenario", "websearch", "--out", str(path),
                 "--horizon", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace records" in out
    assert "modes:" in out  # summary printed

    from repro.obs import read_jsonl

    trace = read_jsonl(path)
    assert trace.spans_named("job")          # job spans present
    assert trace.samples                     # core timeline samples present
    assert trace.events_of("mode_switch")    # at least one AES<->BQ switch


def test_trace_scenario_alias_matches_canonical(capsys):
    assert main(["trace", "--scenario", "websearch",
                 "--horizon", "1", "--no-summary"]) == 0
    first = capsys.readouterr().out.splitlines()[0]
    assert main(["trace", "--scenario", "web_search",
                 "--horizon", "1", "--no-summary"]) == 0
    second = capsys.readouterr().out.splitlines()[0]
    assert first == second  # identical run row: alias resolved to same scenario


def test_trace_csv_exports(tmp_path, capsys):
    timeline = tmp_path / "timeline.csv"
    spans = tmp_path / "spans.csv"
    code = main(["trace", "--horizon", "2", "--rate", "100",
                 "--timeline-csv", str(timeline), "--spans-csv", str(spans),
                 "--no-summary"])
    assert code == 0
    assert timeline.read_text().startswith("time,core,")
    assert spans.read_text().startswith("span_id,parent_id,")


def test_run_with_trace_out(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    code = main(["run", "--rate", "110", "--horizon", "2",
                 "--trace-out", str(path)])
    assert code == 0
    assert path.exists()
    assert "trace records" in capsys.readouterr().out


def test_run_with_trace_flag_prints_summary(capsys):
    code = main(["run", "--rate", "110", "--horizon", "2", "--trace"])
    assert code == 0
    out = capsys.readouterr().out
    assert "jobs (" in out


def test_scenario_with_trace_out(tmp_path, capsys):
    path = tmp_path / "scen.jsonl"
    code = main(["scenario", "gps_tracking", "--horizon", "2",
                 "--trace-out", str(path)])
    assert code == 0
    assert path.exists()


def test_unknown_trace_scenario_raises():
    with pytest.raises(KeyError):
        main(["trace", "--scenario", "nope", "--horizon", "1"])


def test_run_with_sanitize_flag(capsys):
    code = main(["run", "--scheduler", "GE", "--rate", "120",
                 "--horizon", "3", "--sanitize"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sanitizer:" in out and "checks passed" in out


def test_sanitize_env_variable(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert main(["run", "--scheduler", "GE", "--rate", "100", "--horizon", "2"]) == 0
    assert "checks passed" in capsys.readouterr().out


def test_scenario_with_sanitize(capsys):
    assert main(["scenario", "websearch", "--horizon", "2", "--sanitize"]) == 0
    assert "checks passed" in capsys.readouterr().out


def test_trace_with_sanitize(tmp_path, capsys):
    out_path = str(tmp_path / "trace.jsonl")
    assert main(["trace", "--horizon", "2", "--sanitize", "--out", out_path,
                 "--no-summary"]) == 0
    assert "checks passed" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Streaming telemetry, run registry and HTML report commands
# ----------------------------------------------------------------------
def test_run_stream_prints_slo_panel(capsys):
    code = main(["run", "--scheduler", "GE", "--rate", "120",
                 "--horizon", "3", "--stream"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slo:" in out and "quality_floor" in out


def test_stream_conflicts_with_sanitize(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "GE", "--rate", "100", "--horizon", "2",
              "--stream", "--sanitize"])


def test_store_and_runs_lifecycle(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    trace = str(tmp_path / "trace.jsonl")
    # --store implies --stream; --trace-out spills the raw records too.
    code = main(["run", "--scheduler", "GE", "--rate", "120", "--horizon", "3",
                 "--store", "--runs-dir", runs_dir, "--trace-out", trace])
    assert code == 0
    out = capsys.readouterr().out
    assert "stored run" in out
    run_id = out.split("stored run ")[1].split()[0]

    assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
    assert run_id in capsys.readouterr().out

    assert main(["runs", "show", run_id[:8], "--runs-dir", runs_dir]) == 0
    assert "quality_floor" in capsys.readouterr().out

    report = str(tmp_path / "report.html")
    assert main(["report", "--run", run_id[:8], "--runs-dir", runs_dir,
                 "--out", report]) == 0
    html = open(report, encoding="utf-8").read()
    assert "Mode timeline" in html and "<svg" in html

    assert main(["runs", "delete", run_id, "--runs-dir", runs_dir]) == 0
    assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
    assert "no stored runs" in capsys.readouterr().out


def test_runs_diff_two_schedulers(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    for sched in ("GE", "BE"):
        assert main(["run", "--scheduler", sched, "--rate", "120",
                     "--horizon", "3", "--store", "--runs-dir", runs_dir]) == 0
    out = capsys.readouterr().out
    ids = [line.split("stored run ")[1].split()[0]
           for line in out.splitlines() if "stored run" in line]
    assert len(ids) == 2
    assert main(["runs", "diff", ids[0], ids[1], "--runs-dir", runs_dir]) == 0
    diff_out = capsys.readouterr().out
    assert "scheduler" in diff_out and "result:" in diff_out


def test_runs_show_unknown_id_errors(tmp_path, capsys):
    code = main(["runs", "show", "nope", "--runs-dir", str(tmp_path)])
    assert code == 2
    assert "no stored run" in capsys.readouterr().out


def test_report_from_trace_and_trace_show(tmp_path, capsys):
    trace = str(tmp_path / "trace.jsonl")
    assert main(["trace", "--scheduler", "GE", "--rate", "120", "--horizon", "3",
                 "--stream", "--out", trace, "--no-summary"]) == 0
    capsys.readouterr()
    report = str(tmp_path / "report.html")
    assert main(["report", "--trace", trace, "--out", report]) == 0
    assert "wrote" in capsys.readouterr().out
    assert "SLO compliance" in open(report, encoding="utf-8").read()
    # trace show folds the spill offline and prints the same panel.
    assert main(["trace", "show", trace]) == 0
    assert "quality_floor" in capsys.readouterr().out


def test_runs_list_json_format(tmp_path, capsys):
    import json

    runs_dir = str(tmp_path / "runs")
    assert main(["run", "--scheduler", "GE", "--rate", "120", "--horizon", "3",
                 "--store", "--runs-dir", runs_dir]) == 0
    capsys.readouterr()
    assert main(["runs", "list", "--format", "json", "--runs-dir", runs_dir]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["scheduler"] == "GE"
    assert rows[0]["schema"] == "repro.run/1"
    # Empty store: valid JSON too, not the "no stored runs" prose.
    assert main(["runs", "list", "--format", "json",
                 "--runs-dir", str(tmp_path / "empty")]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_runs_gc_keeps_newest_and_pins(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    for seed in ("1", "2", "3"):
        assert main(["run", "--scheduler", "GE", "--rate", "120",
                     "--horizon", "2", "--seed", seed,
                     "--store", "--runs-dir", runs_dir]) == 0
    out = capsys.readouterr().out
    ids = [line.split("stored run ")[1].split()[0]
           for line in out.splitlines() if "stored run" in line]
    assert len(ids) == 3
    # Pin the oldest; keep 1 → only the middle run is collected.
    assert main(["runs", "gc", "--keep", "1", "--pin", ids[0],
                 "--runs-dir", runs_dir]) == 0
    gc_out = capsys.readouterr().out
    assert ids[1] in gc_out and "deleted 1" in gc_out
    assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
    listed = capsys.readouterr().out
    assert ids[0] in listed and ids[2] in listed and ids[1] not in listed


def test_fleet_run_status_report_lifecycle(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    report = str(tmp_path / "fleet.html")
    assert main(["fleet", "run", "--scenarios", "ge_light", "--seeds", "1,2",
                 "--scale", "0.005", "--sequential", "--runs-dir", runs_dir,
                 "--report", report, "--min-slo-compliance", "0.0"]) == 0
    out = capsys.readouterr().out
    assert "mode=sequential" in out
    assert "2 total, 2 succeeded, 0 failed" in out
    assert "stored fleet fleet-" in out
    assert "SLO compliance" in out
    assert "Per-scenario rollup" in open(report, encoding="utf-8").read()

    # status / report resolve the newest stored fleet when no id given.
    assert main(["fleet", "status", "--runs-dir", runs_dir]) == 0
    assert "mode=sequential" in capsys.readouterr().out
    report2 = str(tmp_path / "fleet2.html")
    assert main(["fleet", "report", "--runs-dir", runs_dir,
                 "--out", report2]) == 0
    assert "wrote" in capsys.readouterr().out


def test_fleet_rejects_bad_grids(tmp_path, capsys):
    assert main(["fleet", "run", "--scenarios", "no_such", "--seeds", "1",
                 "--no-store", "--sequential",
                 "--runs-dir", str(tmp_path)]) == 2
    assert "no_such" in capsys.readouterr().out
    assert main(["fleet", "status", "--runs-dir", str(tmp_path)]) == 2
    assert "no stored fleet runs" in capsys.readouterr().out


def test_fleet_status_rejects_single_run_ids(tmp_path, capsys):
    runs_dir = str(tmp_path / "runs")
    assert main(["run", "--scheduler", "GE", "--rate", "120", "--horizon", "2",
                 "--store", "--runs-dir", runs_dir]) == 0
    out = capsys.readouterr().out
    run_id = [line.split("stored run ")[1].split()[0]
              for line in out.splitlines() if "stored run" in line][0]
    assert main(["fleet", "status", run_id, "--runs-dir", runs_dir]) == 2
    assert "not a fleet rollup" in capsys.readouterr().out
