"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_list_prints_all_figures(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 13):
        assert f"fig{i:02d}" in out


def test_run_prints_summary_row(capsys):
    code = main(["run", "--scheduler", "GE", "--rate", "120", "--horizon", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "GE" in out
    assert "Q=" in out


def test_run_each_scheduler(capsys):
    for name in ("BE", "FCFS", "SJF", "GE-ES"):
        assert main(["run", "--scheduler", name, "--rate", "110", "--horizon", "2"]) == 0
    assert "FCFS" in capsys.readouterr().out


def test_fig_command_renders_figure(capsys):
    assert main(["fig", "2"]) == 0
    out = capsys.readouterr().out
    assert "fig02" in out
    assert "cut target" in out


def test_fig_command_with_scale(capsys):
    assert main(["fig", "1", "--scale", "0.005"]) == 0
    assert "aes_fraction" in capsys.readouterr().out


def test_unknown_scheduler_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--scheduler", "NOPE"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_save_and_replay(tmp_path, capsys):
    path = str(tmp_path / "trace.csv")
    assert main(["trace", "save", path, "--rate", "80", "--horizon", "2"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert main(["trace", "replay", path, "--scheduler", "FCFS"]) == 0
    assert "FCFS" in capsys.readouterr().out


def test_replicate_command(capsys):
    assert main(["replicate", "--scheduler", "GE", "--rate", "100",
                 "--horizon", "2", "--n", "2"]) == 0
    out = capsys.readouterr().out
    assert "n=2" in out and "[" in out


def test_fig_csv_export(tmp_path, capsys):
    path = tmp_path / "fig.csv"
    assert main(["fig", "2", "--csv", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# figure: fig02")
    assert "# panel: volumes" in text
    assert "job index" in text


def test_sweep_command(capsys):
    code = main(["sweep", "--schedulers", "GE,FCFS", "--rates", "100,200",
                 "--horizon", "2"])
    assert code == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if "λ=" in l]
    assert len(lines) == 4  # 2 schedulers × 2 rates
    assert any("FCFS" in l for l in lines)


def test_sweep_unknown_scheduler_errors(capsys):
    assert main(["sweep", "--schedulers", "NOPE", "--horizon", "1"]) == 2
    assert "unknown scheduler" in capsys.readouterr().out


def test_scenario_list(capsys):
    assert main(["scenario"]) == 0
    out = capsys.readouterr().out
    assert "web_search" in out and "video_rendering" in out


def test_scenario_run(capsys):
    assert main(["scenario", "process_monitoring", "--horizon", "2"]) == 0
    assert "GE" in capsys.readouterr().out


def test_scenario_unknown_raises():
    with pytest.raises(KeyError):
        main(["scenario", "nope", "--horizon", "2"])


def test_report_command_subset(tmp_path, capsys):
    out = tmp_path / "report.md"
    code = main(["report", "--scale", "0.004", "--figures", "2", "1",
                 "--out", str(out)])
    assert code == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "fig02" in text and "fig01" in text
    assert "```" in text


def test_custom_run_parameters(capsys):
    code = main(
        ["run", "--scheduler", "GE", "--rate", "100", "--horizon", "2",
         "--cores", "8", "--budget", "160", "--q-ge", "0.85"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Q=0.8" in out  # lands near the 0.85 target
