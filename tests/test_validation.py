"""Tests for the post-hoc run validator — and, through it, a sweeping
physical audit of every scheduler in the library."""

from __future__ import annotations

import pytest

from repro.baselines.queue_order import FCFS, FDFS, LJF, SJF
from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_be, make_ge, make_oq
from repro.server.harness import SimulationHarness
from repro.validation import validate_run

ALL_POLICIES = {
    "GE": make_ge,
    "BE": make_be,
    "OQ": make_oq,
    "GE-ES": lambda: GEScheduler(name="GE-ES", distribution="es"),
    "GE-WF": lambda: GEScheduler(name="GE-WF", distribution="wf"),
    "FCFS": FCFS,
    "FDFS": FDFS,
    "LJF": LJF,
    "SJF": SJF,
}


@pytest.mark.parametrize("name", sorted(ALL_POLICIES))
def test_every_policy_passes_physical_audit(name):
    cfg = SimulationConfig(arrival_rate=140.0, horizon=4.0, seed=5)
    harness = SimulationHarness(cfg, ALL_POLICIES[name]())
    harness.run()
    report = validate_run(harness)
    report.raise_if_failed()
    assert report.checked_jobs > 300
    assert report.checked_segments > 0
    assert report.peak_power <= cfg.budget * (1 + 1e-6)


def test_audit_under_overload():
    cfg = SimulationConfig(arrival_rate=240.0, horizon=3.0, seed=5)
    harness = SimulationHarness(cfg, make_ge())
    harness.run()
    report = validate_run(harness)
    report.raise_if_failed()
    # Overloaded: the budget should actually be reached at some instant.
    assert report.peak_power > 0.9 * cfg.budget


def test_audit_discrete_ladder():
    cfg = SimulationConfig(
        arrival_rate=140.0, horizon=3.0, seed=5,
        discrete_levels=tuple(0.25 * k for k in range(1, 13)),
    )
    harness = SimulationHarness(cfg, make_ge())
    harness.run()
    validate_run(harness).raise_if_failed()


def test_audit_heterogeneous_machine():
    cfg = SimulationConfig(
        arrival_rate=120.0, horizon=3.0, seed=5,
        core_power_scales=tuple([0.6] * 8 + [1.0] * 8),
    )
    harness = SimulationHarness(cfg, make_ge())
    harness.run()
    validate_run(harness).raise_if_failed()


def test_report_detects_tampering():
    """Sanity: the validator is not a rubber stamp."""
    cfg = SimulationConfig(arrival_rate=120.0, horizon=2.0, seed=5)
    harness = SimulationHarness(cfg, make_ge())
    harness.run()
    jobs = harness._workload.materialize()
    jobs[0].processed = jobs[0].demand * 2  # corrupt a record
    report = validate_run(harness, jobs=jobs)
    assert not report.ok
    assert any("processed" in v for v in report.violations)
    with pytest.raises(AssertionError):
        report.raise_if_failed()
