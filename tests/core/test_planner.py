"""Tests for per-core plan construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import build_core_plan, core_power_demand, edf_sort
from repro.power.dvfs import ContinuousSpeedScale, DiscreteSpeedScale
from repro.power.models import PowerModel
from repro.workload.job import Job, JobOutcome

MODEL = PowerModel()
SCALE = ContinuousSpeedScale(MODEL)


def job(jid, deadline, demand, processed=0.0, arrival=0.0):
    j = Job(jid=jid, arrival=arrival, deadline=deadline, demand=demand)
    if processed:
        j.add_progress(processed)
    return j


class TestEdfSort:
    def test_sorts_by_deadline_then_jid(self):
        jobs = [job(2, 2.0, 10.0), job(1, 1.0, 10.0), job(3, 1.0, 10.0)]
        assert [j.jid for j in edf_sort(jobs)] == [1, 3, 2]


class TestPowerDemand:
    def test_single_job(self):
        jobs = [job(1, 1.0, 100.0)]
        # 100 units in 1 s -> 0.1 GHz -> 5·0.01 = 0.05 W.
        assert core_power_demand(jobs, [100.0], 0.0, MODEL) == pytest.approx(0.05)

    def test_critical_prefix_dominates(self):
        jobs = [job(1, 0.1, 200.0), job(2, 10.0, 10.0)]
        # Prefix 1: 2000 u/s; prefix 2: 21 u/s -> need 2 GHz -> 20 W.
        assert core_power_demand(jobs, [200.0, 10.0], 0.0, MODEL) == pytest.approx(20.0)

    def test_no_work_no_demand(self):
        jobs = [job(1, 1.0, 100.0)]
        assert core_power_demand(jobs, [0.0], 0.0, MODEL) == 0.0

    def test_empty(self):
        assert core_power_demand([], [], 0.0, MODEL) == 0.0


class TestBuildCorePlan:
    def test_plenty_of_power_full_plan(self):
        jobs = [job(1, 1.0, 100.0), job(2, 2.0, 200.0)]
        plan = build_core_plan(jobs, [100.0, 200.0], 0.0, 320.0, MODEL, SCALE)
        assert len(plan.segments) == 2
        assert not plan.settle_now
        assert plan.segments[0].job.jid == 1
        # YDS: the critical prefix is both jobs (300 units by t=2),
        # intensity 150 u/s = 0.15 GHz shared by the block.
        assert plan.segments[0].speed == pytest.approx(0.15)
        assert plan.segments[1].speed == pytest.approx(0.15)

    def test_target_reached_settles_cut(self):
        j = job(1, 1.0, 200.0, processed=150.0)
        plan = build_core_plan([j], [120.0], 0.0, 320.0, MODEL, SCALE)
        assert not plan.segments
        assert plan.settle_now == [(j, JobOutcome.CUT)]

    def test_target_reached_settles_completed(self):
        j = job(1, 1.0, 200.0, processed=200.0)
        plan = build_core_plan([j], [200.0], 0.0, 320.0, MODEL, SCALE)
        assert plan.settle_now == [(j, JobOutcome.COMPLETED)]

    def test_unprocessed_zero_target_settles_dropped(self):
        j = job(1, 1.0, 200.0)
        plan = build_core_plan([j], [0.0], 0.0, 320.0, MODEL, SCALE)
        assert plan.settle_now == [(j, JobOutcome.DROPPED)]

    def test_power_cap_triggers_second_cut(self):
        # 2000 units due in 1 s needs 2 GHz = 20 W; cap at 5 W -> 1 GHz
        # -> only 1000 units fit.
        j = job(1, 1.0, 2000.0)
        plan = build_core_plan([j], [2000.0], 0.0, 5.0, MODEL, SCALE)
        assert len(plan.segments) == 1
        assert plan.segments[0].volume == pytest.approx(1000.0, rel=1e-6)
        assert plan.segments[0].speed == pytest.approx(1.0)

    def test_second_cut_prefers_quality_efficient_jobs(self):
        # Two jobs sharing one deadline under a tight cap: volumes level.
        jobs = [job(1, 1.0, 900.0), job(2, 1.0, 300.0)]
        plan = build_core_plan(jobs, [900.0, 300.0], 0.0, 5.0, MODEL, SCALE)
        vols = {s.job.jid: s.volume for s in plan.segments}
        assert vols[2] == pytest.approx(300.0, rel=1e-6)
        assert vols[1] == pytest.approx(700.0, rel=1e-6)

    def test_zero_power_settles_everything(self):
        jobs = [job(1, 1.0, 100.0, processed=50.0), job(2, 1.0, 100.0)]
        plan = build_core_plan(jobs, [100.0, 100.0], 0.0, 0.0, MODEL, SCALE)
        assert not plan.segments
        outcomes = {j.jid: o for j, o in plan.settle_now}
        assert outcomes[1] is JobOutcome.CUT
        assert outcomes[2] is JobOutcome.DROPPED

    def test_segments_meet_deadlines(self):
        jobs = [job(1, 0.2, 150.0), job(2, 0.5, 400.0), job(3, 0.6, 100.0)]
        plan = build_core_plan(
            jobs, [150.0, 400.0, 100.0], 0.0, 320.0, MODEL, SCALE
        )
        t = 0.0
        for seg in plan.segments:
            t += seg.volume / (seg.speed * 1000.0)
            assert t <= seg.job.deadline + 1e-9

    def test_discrete_scale_rounds_up_within_cap(self):
        scale = DiscreteSpeedScale(MODEL, levels=[0.5, 1.0, 1.5, 2.0])
        j = job(1, 1.0, 700.0)  # needs 0.7 GHz
        plan = build_core_plan([j], [700.0], 0.0, 20.0, MODEL, scale)
        assert plan.segments[0].speed == 1.0  # ceil(0.7) on the ladder

    def test_discrete_scale_respects_cap(self):
        scale = DiscreteSpeedScale(MODEL, levels=[0.5, 1.0, 1.5, 2.0])
        # Cap 5 W -> 1.0 GHz max level; need 0.7 GHz -> ceil is 1.0 = cap.
        j = job(1, 1.0, 700.0)
        plan = build_core_plan([j], [700.0], 0.0, 5.0, MODEL, scale)
        assert plan.segments[0].speed == 1.0

    def test_empty_jobs(self):
        plan = build_core_plan([], [], 0.0, 20.0, MODEL, SCALE)
        assert not plan.segments and not plan.settle_now


class TestDiscreteDvfsBatches:
    """S4: discrete-DVFS planning on the degenerate batch shapes —
    every emitted speed must sit ON the ladder, never above the
    power-cap's rectified maximum level."""

    LADDER = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]

    def _scale(self):
        return DiscreteSpeedScale(MODEL, levels=self.LADDER)

    def test_all_equal_demands_one_merged_block_on_ladder(self):
        scale = self._scale()
        n = 4
        jobs = [job(i, 1.0, 300.0) for i in range(n)]
        plan = build_core_plan(jobs, [300.0] * n, 0.0, 320.0, MODEL, scale)
        assert len(plan.segments) == n
        # Equal deadlines and demands merge into one YDS block: every
        # segment carries the same ladder speed.
        speeds = {seg.speed for seg in plan.segments}
        assert len(speeds) == 1
        (speed,) = speeds
        assert speed in self.LADDER
        # 4 × 300 units in 1 s needs 1.2 GHz -> ceil to 1.25 on the ladder.
        assert speed == 1.25

    def test_all_equal_demands_capped_by_power(self):
        scale = self._scale()
        n = 4
        jobs = [job(i, 1.0, 300.0) for i in range(n)]
        # 5 W cap -> 1.0 GHz max; the 1.2 GHz need is rectified to 1.0.
        plan = build_core_plan(jobs, [300.0] * n, 0.0, 5.0, MODEL, scale)
        for seg in plan.segments:
            assert seg.speed <= scale.max_speed_at_power(5.0) + 1e-12
            assert seg.speed in self.LADDER

    def test_staircase_speeds_stay_on_ladder(self):
        scale = self._scale()
        jobs = [job(1, 0.25, 200.0), job(2, 1.0, 300.0), job(3, 2.0, 100.0)]
        plan = build_core_plan(
            jobs, [200.0, 300.0, 100.0], 0.0, 320.0, MODEL, scale
        )
        cap = scale.max_speed_at_power(320.0)
        assert plan.segments
        for seg in plan.segments:
            assert seg.speed in self.LADDER
            assert seg.speed <= cap + 1e-12

    def test_precomputed_cap_kwargs_change_nothing(self):
        """The speed_cap/capacity memo kwargs must be pure shortcuts."""
        scale = self._scale()
        jobs = [job(1, 0.5, 200.0), job(2, 1.0, 300.0)]
        targets = [200.0, 300.0]
        base = build_core_plan(jobs, targets, 0.0, 20.0, MODEL, scale)
        cap = scale.max_speed_at_power(20.0)
        memod = build_core_plan(
            jobs,
            targets,
            0.0,
            20.0,
            MODEL,
            scale,
            speed_cap=cap,
            capacity=MODEL.throughput(cap),
        )
        assert [
            (s.job.jid, s.volume, s.speed) for s in base.segments
        ] == [(s.job.jid, s.volume, s.speed) for s in memod.segments]
