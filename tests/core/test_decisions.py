"""Tests for the scheduling decision log."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.decisions import Decision, DecisionLog
from repro.core.ge import GEScheduler
from repro.server.harness import SimulationHarness


def make_decision(time=1.0, mode="aes", policy="ES", caps=(20.0, 20.0)):
    return Decision(
        time=time, mode=mode, policy=policy, batch_size=3,
        active_jobs=10, monitor_quality=0.91, caps=caps,
    )


class TestDecisionLog:
    def test_record_and_iterate(self):
        log = DecisionLog()
        log.record(make_decision(1.0))
        log.record(make_decision(2.0))
        assert len(log) == 2
        assert [d.time for d in log] == [1.0, 2.0]
        assert log.last.time == 2.0
        assert log.total_recorded == 2

    def test_ring_buffer_evicts_oldest(self):
        log = DecisionLog(capacity=3)
        for t in range(5):
            log.record(make_decision(float(t)))
        assert len(log) == 3
        assert [d.time for d in log] == [2.0, 3.0, 4.0]
        assert log.total_recorded == 5

    def test_mode_changes(self):
        log = DecisionLog()
        for t, mode in [(1, "aes"), (2, "aes"), (3, "bq"), (4, "aes")]:
            log.record(make_decision(float(t), mode=mode))
        assert log.mode_changes() == [(1.0, "aes"), (3.0, "bq"), (4.0, "aes")]

    def test_rows_and_limit(self):
        log = DecisionLog()
        for t in range(10):
            log.record(make_decision(float(t)))
        rows = log.to_rows(limit=2)
        assert len(rows) == 2
        assert "ΣP=" in rows[0]

    def test_total_cap(self):
        assert make_decision(caps=(10.0, 15.0)).total_cap == pytest.approx(25.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecisionLog(capacity=0)


class TestIntegration:
    def test_ge_populates_log(self):
        log = DecisionLog()
        cfg = SimulationConfig(arrival_rate=120.0, horizon=3.0, seed=2)
        scheduler = GEScheduler(decision_log=log)
        SimulationHarness(cfg, scheduler).run()
        assert len(log) > 10
        assert log.total_recorded == scheduler.reschedules
        for d in log:
            assert d.mode in ("aes", "bq")
            assert d.policy in ("ES", "WF")
            assert d.total_cap <= cfg.budget * (1 + 1e-9)
            assert 0.0 <= d.monitor_quality <= 1.0

    def test_log_shows_wf_under_heavy_load(self):
        log = DecisionLog()
        cfg = SimulationConfig(arrival_rate=230.0, horizon=3.0, seed=2)
        SimulationHarness(cfg, GEScheduler(decision_log=log)).run()
        policies = {d.policy for d in log}
        assert "WF" in policies  # heavy load engages water-filling


class TestTracerMigration:
    def test_none_capacity_falls_back_to_default_bound(self):
        from repro.core.decisions import DEFAULT_CAPACITY

        log = DecisionLog(capacity=None)
        assert log.capacity == DEFAULT_CAPACITY  # never unbounded

    def test_capacity_property(self):
        assert DecisionLog(capacity=5).capacity == 5

    def test_record_emits_through_tracer(self):
        from repro.obs import Tracer

        tracer = Tracer()
        log = DecisionLog(capacity=2, tracer=tracer)
        for t in range(4):
            log.record(make_decision(float(t)))
        # Ring buffer still bounded...
        assert len(log) == 2
        # ...but the tracer kept the full decision stream.
        decisions = [e for e in tracer.events if e.kind == "decision"]
        assert [e.time for e in decisions] == [0.0, 1.0, 2.0, 3.0]
        assert decisions[0].attrs["policy"] == "ES"

    def test_no_tracer_is_still_fine(self):
        log = DecisionLog()
        log.record(make_decision())
        assert log.tracer is None
        assert len(log) == 1

    def test_ge_with_shared_tracer_emits_each_round_once(self):
        from repro.obs import Tracer
        from repro.server.harness import SimulationHarness as Harness

        tracer = Tracer()
        log = DecisionLog(tracer=tracer)
        cfg = SimulationConfig(arrival_rate=120.0, horizon=2.0, seed=2)
        scheduler = GEScheduler(decision_log=log)
        Harness(cfg, scheduler, tracer=tracer).run()
        decisions = [e for e in tracer.events if e.kind == "decision"]
        assert len(decisions) == scheduler.reschedules  # no double emission
        assert log.total_recorded == scheduler.reschedules

    def test_ge_without_log_still_emits_decisions(self):
        from repro.obs import Tracer
        from repro.server.harness import SimulationHarness as Harness

        tracer = Tracer()
        cfg = SimulationConfig(arrival_rate=120.0, horizon=2.0, seed=2)
        scheduler = GEScheduler()
        Harness(cfg, scheduler, tracer=tracer).run()
        decisions = [e for e in tracer.events if e.kind == "decision"]
        assert len(decisions) == scheduler.reschedules
