"""Tests for Quality-OPT (partial processing under capacity limits)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quality_opt import prefix_feasible, quality_opt
from repro.errors import InfeasibleError
from repro.quality.functions import ExponentialQuality

F = ExponentialQuality(c=0.003, x_max=1000.0)


def brute_force(bounds, deadlines, now, capacity, offsets=None, grid=12):
    """Grid-search reference optimum of Σ f(offset + x)."""
    n = len(bounds)
    offsets = offsets or [0.0] * n
    capacities = [capacity * (d - now) for d in deadlines]
    best_val, best_x = -1.0, None
    axes = [np.linspace(0.0, b, grid) for b in bounds]
    for xs in itertools.product(*axes):
        if not prefix_feasible(np.asarray(xs), np.asarray(capacities)):
            continue
        val = sum(float(F(o + x)) for o, x in zip(offsets, xs))
        if val > best_val:
            best_val, best_x = val, xs
    return best_val, best_x


class TestQualityOpt:
    def test_plenty_of_capacity_grants_everything(self):
        out = quality_opt([100.0, 200.0], [10.0, 20.0], 0.0, 1000.0)
        assert out == pytest.approx([100.0, 200.0])

    def test_zero_capacity_grants_nothing(self):
        out = quality_opt([100.0, 200.0], [1.0, 2.0], 0.0, 0.0)
        assert out == pytest.approx([0.0, 0.0])

    def test_empty_input(self):
        assert quality_opt([], [], 0.0, 100.0).size == 0

    def test_equalizes_volumes_under_shared_deadline(self):
        """With one shared deadline and concave f, the optimum levels
        total volumes (water-filling)."""
        out = quality_opt([300.0, 300.0, 50.0], [1.0, 1.0, 1.0], 0.0, 250.0)
        # 250 units to split; job 2 takes its full 50, jobs 0/1 get 100 each.
        assert out[2] == pytest.approx(50.0)
        assert out[0] == pytest.approx(100.0)
        assert out[1] == pytest.approx(100.0)

    def test_offsets_shift_the_waterline(self):
        """A job with prior progress receives less extra volume."""
        out = quality_opt(
            [300.0, 300.0], [1.0, 1.0], 0.0, 200.0, offsets=[100.0, 0.0]
        )
        # Levels total volumes: job0 at 100+50=150, job1 at 150.
        assert out[0] == pytest.approx(50.0)
        assert out[1] == pytest.approx(150.0)

    def test_binding_prefix_limits_early_jobs(self):
        """An early tight deadline caps the first job independently."""
        out = quality_opt([500.0, 500.0], [0.1, 10.0], 0.0, 1000.0)
        assert out[0] == pytest.approx(100.0)  # 1000 u/s · 0.1 s
        assert out[1] == pytest.approx(500.0)

    def test_unused_early_capacity_flows_to_later_jobs(self):
        out = quality_opt([10.0, 500.0], [1.0, 1.0], 0.0, 300.0)
        assert out == pytest.approx([10.0, 290.0])

    def test_result_is_prefix_feasible(self):
        bounds = [400.0, 300.0, 200.0, 100.0]
        dls = [0.2, 0.5, 0.6, 1.0]
        out = quality_opt(bounds, dls, 0.0, 800.0)
        capacities = 800.0 * (np.array(dls) - 0.0)
        assert prefix_feasible(out, capacities)
        assert np.all(out <= np.array(bounds) + 1e-9)

    def test_matches_brute_force_two_jobs(self):
        bounds = [300.0, 200.0]
        dls = [0.4, 1.0]
        out = quality_opt(bounds, dls, 0.0, 400.0, offsets=[0.0, 50.0])
        val = sum(float(F(o + x)) for o, x in zip([0.0, 50.0], out))
        ref, _ = brute_force(bounds, dls, 0.0, 400.0, offsets=[0.0, 50.0], grid=60)
        assert val >= ref - 1e-3

    def test_matches_brute_force_three_jobs(self):
        bounds = [250.0, 150.0, 350.0]
        dls = [0.3, 0.6, 0.9]
        out = quality_opt(bounds, dls, 0.0, 600.0)
        val = sum(float(F(x)) for x in out)
        ref, _ = brute_force(bounds, dls, 0.0, 600.0, grid=25)
        assert val >= ref - 1e-3

    def test_negative_capacity_raises(self):
        with pytest.raises(InfeasibleError):
            quality_opt([10.0], [1.0], 0.0, -5.0)

    def test_past_deadline_raises(self):
        with pytest.raises(InfeasibleError):
            quality_opt([10.0], [1.0], 2.0, 100.0)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            quality_opt([10.0, 20.0], [1.0], 0.0, 100.0)
        with pytest.raises(ValueError):
            quality_opt([-1.0], [1.0], 0.0, 100.0)
        with pytest.raises(ValueError):
            quality_opt([1.0, 1.0], [2.0, 1.0], 0.0, 100.0)

    @settings(max_examples=60, deadline=None)
    @given(
        bounds=st.lists(st.floats(min_value=0.0, max_value=400.0), min_size=1, max_size=6),
        gaps=st.lists(st.floats(min_value=0.05, max_value=0.5), min_size=6, max_size=6),
        capacity=st.floats(min_value=0.0, max_value=2000.0),
    )
    def test_property_feasible_and_bounded(self, bounds, gaps, capacity):
        dls = list(np.cumsum(gaps[: len(bounds)]))
        out = quality_opt(bounds, dls, 0.0, capacity)
        assert np.all(out >= -1e-9)
        assert np.all(out <= np.asarray(bounds) + 1e-9)
        assert prefix_feasible(out, capacity * np.asarray(dls), rel_tol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        bounds=st.lists(st.floats(min_value=1.0, max_value=400.0), min_size=2, max_size=4),
        capacity=st.floats(min_value=50.0, max_value=1500.0),
    )
    def test_property_beats_proportional_truncation(self, bounds, capacity):
        """The optimum is at least as good as naively scaling everything
        to fit the total capacity (a natural but suboptimal scheme)."""
        n = len(bounds)
        dls = [1.0] * n
        out = quality_opt(bounds, dls, 0.0, capacity)
        opt_val = sum(float(F(x)) for x in out)
        total = sum(bounds)
        scale = min(1.0, capacity / total)
        naive = sum(float(F(b * scale)) for b in bounds)
        assert opt_val >= naive - 1e-6


# ---------------------------------------------------------------------------
# Bitwise equivalence of the list-based hot path against the original
# all-numpy formulation it replaced (see the comments in quality_opt.py:
# the rewrite must not change simulated results by even an ulp).
# ---------------------------------------------------------------------------

_EPS = 1e-12


def _waterline_ref(offsets, bounds, budget):
    """Verbatim copy of the pre-optimization `_waterline_for_budget`."""
    tops = offsets + bounds
    if float(np.sum(bounds)) <= budget + _EPS:
        return float("inf")
    points = np.unique(np.concatenate([offsets, tops]))

    def allocated(w):
        return float(np.sum(np.clip(w - offsets, 0.0, bounds)))

    lo = float(points[0])
    hi = float(points[-1])
    for p in points:
        if allocated(float(p)) >= budget - _EPS:
            hi = float(p)
            break
        lo = float(p)
    alloc_lo = allocated(lo)
    active = np.sum((offsets <= lo + _EPS) & (tops > lo + _EPS))
    if active <= 0:
        return hi
    return lo + (budget - alloc_lo) / float(active)


def _quality_opt_ref(bounds, deadlines, now, capacity_per_second, offsets=None):
    """Verbatim copy of the pre-optimization `quality_opt` main path."""
    bounds_arr = np.asarray(bounds, dtype=float)
    dls = np.asarray(deadlines, dtype=float)
    n = bounds_arr.size
    if n == 0:
        return np.zeros(0)
    offs = np.zeros(n) if offsets is None else np.asarray(offsets, dtype=float)
    capacities = capacity_per_second * (dls - now)
    capacities = np.maximum(capacities, 0.0)
    if n == 1:
        return np.array([min(bounds_arr[0], capacities[0])])
    result = np.zeros(n)
    start = 0
    consumed = 0.0
    while start < n:
        best_k = None
        best_w = float("inf")
        sub_off = offs[start:]
        sub_bnd = bounds_arr[start:]
        for k in range(n - start):
            budget = capacities[start + k] - consumed
            if budget <= _EPS:
                w = -float("inf") if np.any(sub_bnd[: k + 1] > _EPS) else float("inf")
                if w < best_w:
                    best_w = w
                    best_k = k
                continue
            w = _waterline_ref(sub_off[: k + 1], sub_bnd[: k + 1], budget)
            if w < best_w - _EPS:
                best_w = w
                best_k = k
        if best_k is None or best_w == float("inf"):
            result[start:] = bounds_arr[start:]
            break
        block = slice(start, start + best_k + 1)
        if best_w == -float("inf"):
            alloc = np.zeros(best_k + 1)
        else:
            alloc = np.clip(best_w - offs[block], 0.0, bounds_arr[block])
        result[block] = alloc
        consumed += float(np.sum(alloc))
        start = start + best_k + 1
    return result


class TestBitwiseAgainstReference:
    """The optimized quality_opt must match the original algorithm bit
    for bit on random batches covering every regime: all-fits fast path,
    binding prefixes, zero-capacity prefixes, nonzero offsets, and
    duplicate deadlines."""

    def _random_case(self, rng):
        n = int(rng.integers(1, 12))
        bounds = rng.uniform(0.0, 300.0, n)
        # Occasionally zero out bounds to exercise the pos_idx pointer.
        bounds[rng.uniform(size=n) < 0.15] = 0.0
        gaps = rng.uniform(0.0, 2.0, n)
        # Duplicate-deadline clusters with probability ~1/3.
        gaps[rng.uniform(size=n) < 0.3] = 0.0
        now = float(rng.uniform(0.0, 5.0))
        deadlines = now + 1e-3 + np.cumsum(gaps)
        capacity = float(rng.uniform(0.0, 400.0))
        offsets = None
        if rng.uniform() < 0.5:
            offsets = rng.uniform(0.0, 150.0, n)
        return bounds, deadlines, now, capacity, offsets

    def test_random_batches_bitwise_equal(self):
        rng = np.random.default_rng(1234)
        for _ in range(400):
            bounds, dls, now, cap, offs = self._random_case(rng)
            got = quality_opt(bounds, dls, now, cap, offsets=offs)
            ref = _quality_opt_ref(bounds, dls, now, cap, offsets=offs)
            assert got.tolist() == ref.tolist()

    def test_generous_capacity_hits_fast_path_bitwise(self):
        rng = np.random.default_rng(99)
        for _ in range(100):
            n = int(rng.integers(1, 10))
            bounds = rng.uniform(0.1, 50.0, n)
            deadlines = 1.0 + np.cumsum(rng.uniform(0.1, 1.0, n))
            cap = float(np.sum(bounds)) * 10.0  # every prefix fits
            got = quality_opt(bounds, deadlines, 0.0, cap)
            ref = _quality_opt_ref(bounds, deadlines, 0.0, cap)
            assert got.tolist() == ref.tolist() == bounds.tolist()

    def test_list_and_array_inputs_agree(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            bounds, dls, now, cap, offs = self._random_case(rng)
            from_arrays = quality_opt(bounds, dls, now, cap, offsets=offs)
            from_lists = quality_opt(
                bounds.tolist(),
                dls.tolist(),
                now,
                cap,
                offsets=None if offs is None else offs.tolist(),
            )
            assert from_arrays.tolist() == from_lists.tolist()

    def test_row_reduction_matches_per_point_scan(self):
        """The 2-D `np.sum(..., axis=1)` inside `_waterline_for_budget`
        must be bitwise equal to the per-point 1-D scan it replaced
        (promised in the quality_opt.py comment)."""
        rng = np.random.default_rng(5)
        for _ in range(300):
            n = int(rng.integers(1, 16))
            offsets = rng.uniform(0.0, 200.0, n)
            bounds = rng.uniform(0.0, 200.0, n)
            points = np.unique(np.concatenate([offsets, offsets + bounds]))
            rows = np.sum(np.clip(points[:, None] - offsets, 0.0, bounds), axis=1)
            scan = [float(np.sum(np.clip(p - offsets, 0.0, bounds))) for p in points]
            assert rows.tolist() == scan

    def test_single_job_edge_cases(self):
        assert quality_opt([5.0], [2.0], 0.0, 10.0).tolist() == [5.0]
        assert quality_opt([5.0], [1.0], 0.0, 2.0).tolist() == [2.0]
        assert quality_opt([5.0], [1.0], 1.0, 2.0).tolist() == [0.0]
        with pytest.raises(ValueError, match="non-negative"):
            quality_opt([-1.0], [1.0], 0.0, 2.0)
        with pytest.raises(InfeasibleError):
            quality_opt([5.0], [0.5], 1.0, 2.0)
        with pytest.raises(InfeasibleError):
            quality_opt([5.0], [1.0], 0.0, -2.0)
        with pytest.raises(ValueError, match="offsets"):
            quality_opt([5.0], [1.0], 0.0, 2.0, offsets=[-0.5])
