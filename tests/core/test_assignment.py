"""Tests for RR / C-RR / least-loaded job assignment."""

from __future__ import annotations

import pytest

from repro.core.assignment import CumulativeRoundRobin, LeastLoaded, RoundRobin
from repro.errors import ConfigurationError
from repro.workload.job import Job


def jobs(n, demand=100.0):
    return [Job(jid=i, arrival=0.0, deadline=1.0, demand=demand) for i in range(n)]


def cores_of(pairs):
    return [core for _, core in pairs]


def test_rr_restarts_each_batch():
    rr = RoundRobin(m=4)
    assert cores_of(rr.assign(jobs(6), [0] * 4)) == [0, 1, 2, 3, 0, 1]
    assert cores_of(rr.assign(jobs(3), [0] * 4)) == [0, 1, 2]


def test_crr_pointer_persists():
    """C-RR 'assigns jobs to the core where the last job distribution
    cycle stops' (§III-E)."""
    crr = CumulativeRoundRobin(m=4)
    assert cores_of(crr.assign(jobs(6), [0] * 4)) == [0, 1, 2, 3, 0, 1]
    assert crr.pointer == 2
    assert cores_of(crr.assign(jobs(3), [0] * 4)) == [2, 3, 0]
    assert crr.pointer == 1


def test_crr_balances_over_many_small_batches():
    crr = CumulativeRoundRobin(m=4)
    counts = [0] * 4
    for _ in range(10):
        for _, core in crr.assign(jobs(3), [0] * 4):
            counts[core] += 1
    # 30 jobs over 4 cores: 8/8/7/7 — perfectly balanced.
    assert max(counts) - min(counts) <= 1


def test_rr_unbalances_with_odd_batches():
    """The motivation for C-RR: plain RR always hits core 0 first."""
    rr = RoundRobin(m=4)
    counts = [0] * 4
    for _ in range(10):
        for _, core in rr.assign(jobs(1), [0] * 4):
            counts[core] += 1
    assert counts == [10, 0, 0, 0]


def test_crr_reset():
    crr = CumulativeRoundRobin(m=3)
    crr.assign(jobs(2), [0] * 3)
    crr.reset()
    assert crr.pointer == 0


def test_least_loaded_prefers_empty_core():
    ll = LeastLoaded(m=3)
    pairs = ll.assign(jobs(2, demand=50.0), [100.0, 0.0, 30.0])
    assert cores_of(pairs) == [1, 2]


def test_least_loaded_accounts_for_batch():
    ll = LeastLoaded(m=2)
    pairs = ll.assign(jobs(3, demand=10.0), [0.0, 0.0])
    assert cores_of(pairs) == [0, 1, 0]


def test_least_loaded_requires_matching_loads():
    ll = LeastLoaded(m=2)
    with pytest.raises(ConfigurationError):
        ll.assign(jobs(1), [0.0])


def test_invalid_core_count():
    with pytest.raises(ConfigurationError):
        RoundRobin(m=0)
