"""Tests for Energy-OPT (YDS speed scaling)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy_opt import (
    energy_of_blocks,
    per_job_speeds,
    yds_schedule,
    yds_schedule_general,
)
from repro.errors import InfeasibleError


def power(s: float) -> float:
    return 5.0 * (s / 1000.0) ** 2  # speeds here are units/second


class TestYdsAgreeable:
    def test_single_job_runs_at_exact_intensity(self):
        blocks = yds_schedule([100.0], [1.0], now=0.0)
        assert len(blocks) == 1
        assert blocks[0].speed == pytest.approx(100.0)
        assert blocks[0].jobs == (0,)

    def test_speeds_are_non_increasing(self):
        blocks = yds_schedule(
            [300.0, 50.0, 50.0, 10.0], [0.5, 1.0, 2.0, 10.0], now=0.0
        )
        speeds = [b.speed for b in blocks]
        assert speeds == sorted(speeds, reverse=True)

    def test_every_job_scheduled_once(self):
        vols = [10.0, 20.0, 30.0, 40.0]
        blocks = yds_schedule(vols, [1.0, 2.0, 3.0, 4.0], now=0.0)
        scheduled = sorted(j for b in blocks for j in b.jobs)
        assert scheduled == [0, 1, 2, 3]

    def test_feasibility_every_deadline_met(self):
        vols = [120.0, 80.0, 200.0, 30.0]
        dls = [0.4, 0.8, 1.5, 1.6]
        blocks = yds_schedule(vols, dls, now=0.0)
        speeds = per_job_speeds(blocks, len(vols))
        t = 0.0
        for i, (v, d) in enumerate(zip(vols, dls)):
            t += v / speeds[i]
            assert t <= d + 1e-9

    def test_critical_block_finishes_exactly_at_its_deadline(self):
        # Job 0 is critical: 200 units by t=0.5 -> 400 u/s.
        blocks = yds_schedule([200.0, 10.0], [0.5, 10.0], now=0.0)
        assert blocks[0].speed == pytest.approx(400.0)
        assert blocks[1].speed == pytest.approx(10.0 / 9.5)

    def test_equal_intensity_merges_into_one_block(self):
        # Both prefixes have intensity 100: one block of two jobs.
        blocks = yds_schedule([100.0, 100.0], [1.0, 2.0], now=0.0)
        assert len(blocks) == 1
        assert blocks[0].jobs == (0, 1)

    def test_nonzero_now_offsets_spans(self):
        blocks = yds_schedule([100.0], [11.0], now=10.0)
        assert blocks[0].speed == pytest.approx(100.0)

    def test_max_speed_violation_raises(self):
        with pytest.raises(InfeasibleError):
            yds_schedule([1000.0], [1.0], now=0.0, max_speed=500.0)

    def test_max_speed_tolerates_float_noise(self):
        blocks = yds_schedule([500.0], [1.0], now=0.0, max_speed=500.0 * (1 - 1e-12))
        assert blocks[0].speed <= 500.0

    def test_deadline_before_now_raises(self):
        with pytest.raises(InfeasibleError):
            yds_schedule([10.0], [1.0], now=2.0)

    def test_unsorted_deadlines_rejected(self):
        with pytest.raises(ValueError):
            yds_schedule([1.0, 1.0], [2.0, 1.0], now=0.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValueError):
            yds_schedule([0.0], [1.0], now=0.0)

    def test_optimal_vs_constant_speed(self):
        """YDS energy never exceeds running at the max-prefix intensity."""
        vols = [50.0, 150.0, 30.0]
        dls = [1.0, 1.5, 4.0]
        blocks = yds_schedule(vols, dls, now=0.0)
        e_opt = energy_of_blocks(blocks, vols, power)
        worst = max(np.cumsum(vols) / np.array(dls))
        e_const = sum(power(worst) * v / worst for v in vols)
        assert e_opt <= e_const + 1e-9

    def test_optimality_vs_grid_search_two_jobs(self):
        """Brute-force the 2-job case: YDS matches the grid optimum."""
        vols = [100.0, 60.0]
        dls = [0.8, 1.2]
        blocks = yds_schedule(vols, dls, now=0.0)
        e_opt = energy_of_blocks(blocks, vols, power)
        best = np.inf
        # Grid over job-0 finish time; job 1 then uses the rest.
        for t0 in np.linspace(0.05, 0.8, 400):
            s0 = vols[0] / t0
            s1 = vols[1] / (dls[1] - t0)
            if s1 <= 0:
                continue
            e = power(s0) * t0 + power(s1) * (dls[1] - t0)
            best = min(best, e)
        assert e_opt <= best + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=8),
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=8, max_size=8),
    )
    def test_property_feasible_and_nonincreasing(self, vols, gaps):
        dls = list(np.cumsum(gaps[: len(vols)]))
        blocks = yds_schedule(vols, dls, now=0.0)
        speeds = [b.speed for b in blocks]
        assert all(a >= b - 1e-9 for a, b in zip(speeds, speeds[1:]))
        per_job = per_job_speeds(blocks, len(vols))
        t = 0.0
        for v, d, s in zip(vols, dls, per_job):
            t += v / s
            assert t <= d + 1e-6


class TestYdsGeneral:
    def test_matches_agreeable_specialization(self):
        vols = [120.0, 80.0, 200.0]
        dls = [0.4, 0.9, 1.5]
        releases = [0.0, 0.0, 0.0]
        profile = yds_schedule_general(releases, dls, vols)
        blocks = yds_schedule(vols, dls, now=0.0)
        general_speeds = sorted((s for _, _, s in profile), reverse=True)
        block_speeds = sorted((b.speed for b in blocks), reverse=True)
        # The distinct staircase speeds must coincide.
        assert general_speeds == pytest.approx(block_speeds)

    def test_disjoint_windows(self):
        profile = yds_schedule_general([0.0, 2.0], [1.0, 3.0], [100.0, 10.0])
        speeds = {round(s, 6) for _, _, s in profile}
        assert speeds == {100.0, 10.0}

    def test_classic_nested_example(self):
        # A long job spanning [0, 10] with a burst job in [4, 6].
        profile = yds_schedule_general([0.0, 4.0], [10.0, 6.0], [40.0, 20.0])
        # Critical interval is [4, 6] at (20)/2 = 10? No: the long job
        # may also run there. YDS: interval [4,6] contains only job 2
        # (fully), intensity 10; interval [0,10] has intensity 6. The
        # burst makes [4,6] critical at 10 only if 10 > overall; after
        # removing it the long job gets 8 time units -> speed 5.
        assert profile[0][2] == pytest.approx(10.0)
        assert profile[1][2] == pytest.approx(5.0)

    def test_infeasible_inputs_rejected(self):
        with pytest.raises(ValueError):
            yds_schedule_general([0.0], [0.0], [10.0])
        with pytest.raises(ValueError):
            yds_schedule_general([0.0], [1.0], [0.0])
        with pytest.raises(ValueError):
            yds_schedule_general([0.0, 0.0], [1.0], [1.0, 1.0])


class TestSmallStaircaseBitwise:
    """The pure-Python small-batch staircase must produce exactly the
    same blocks (indices AND speed bits) as the vectorized numpy path —
    the contract promised in `_yds_staircase_small`'s docstring."""

    def _shape(self, blocks):
        return [(b.jobs, b.speed) for b in blocks]

    def test_random_batches_bitwise_equal(self, monkeypatch):
        import repro.core.energy_opt as eo

        rng = np.random.default_rng(2024)
        for _ in range(300):
            n = int(rng.integers(2, 33))
            vols = rng.uniform(0.1, 200.0, n)
            gaps = rng.uniform(0.0, 1.5, n)
            gaps[rng.uniform(size=n) < 0.3] = 0.0  # duplicate deadlines
            now = float(rng.uniform(0.0, 3.0))
            dls = now + 1e-3 + np.cumsum(gaps)
            small = yds_schedule(vols, dls, now)
            with monkeypatch.context() as m:
                m.setattr(eo, "_SMALL_N", 0)  # force the numpy path
                big = yds_schedule(vols, dls, now)
            assert self._shape(small) == self._shape(big)

    def test_list_and_array_inputs_agree(self):
        vols = [30.0, 10.0, 80.0, 5.0]
        dls = [1.0, 1.0, 2.5, 4.0]
        a = yds_schedule(vols, dls, 0.0)
        b = yds_schedule(np.asarray(vols), np.asarray(dls), 0.0)
        assert self._shape(a) == self._shape(b)

    def test_single_job_cap_slack_and_errors(self):
        blocks = yds_schedule([100.0], [1.0], 0.0, max_speed=100.0)
        assert blocks[0].speed == 100.0  # 1e-9 slack admits the exact cap
        with pytest.raises(InfeasibleError):
            yds_schedule([100.0], [1.0], 0.0, max_speed=99.0)
        with pytest.raises(ValueError, match="positive"):
            yds_schedule([0.0], [1.0], 0.0)
        with pytest.raises(InfeasibleError, match="not after"):
            yds_schedule([1.0], [1.0], 1.0)
