"""Tests for the sliding-window load estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.load import ArrivalRateEstimator, VolumeRateEstimator
from repro.errors import ConfigurationError


class TestArrivalRate:
    def test_empty_rate_is_zero(self):
        est = ArrivalRateEstimator(window=2.0)
        assert est.rate(10.0) == 0.0

    def test_uniform_arrivals_recover_rate(self):
        est = ArrivalRateEstimator(window=2.0)
        for i in range(400):
            est.observe(i * 0.01)  # 100/s for 4 seconds
        assert est.rate(4.0) == pytest.approx(100.0, rel=0.02)

    def test_old_arrivals_evicted(self):
        est = ArrivalRateEstimator(window=1.0)
        for i in range(100):
            est.observe(i * 0.01)
        assert est.rate(100.0) == 0.0

    def test_is_heavy_threshold(self):
        est = ArrivalRateEstimator(window=1.0)
        for i in range(200):
            est.observe(i * 0.005)  # 200/s
        assert est.is_heavy(1.0, critical_rate=154.0)
        assert not est.is_heavy(1.0, critical_rate=250.0)

    def test_non_monotone_times_rejected(self):
        est = ArrivalRateEstimator()
        est.observe(1.0)
        with pytest.raises(ValueError):
            est.observe(0.5)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            ArrivalRateEstimator(window=0.0)

    def test_poisson_rate_estimate(self):
        rng = np.random.default_rng(1)
        est = ArrivalRateEstimator(window=5.0)
        t = 0.0
        for gap in rng.exponential(1 / 150.0, 3000):
            t += gap
            est.observe(t)
        assert est.rate(t) == pytest.approx(150.0, rel=0.15)


class TestVolumeRate:
    def test_volume_rate(self):
        est = VolumeRateEstimator(window=2.0)
        for i in range(200):
            est.observe(i * 0.01, volume=192.0)  # 100/s · 192 units
        assert est.rate(2.0) == pytest.approx(100.0 * 192.0, rel=0.02)

    def test_eviction_restores_sum(self):
        est = VolumeRateEstimator(window=1.0)
        est.observe(0.0, 100.0)
        est.observe(0.5, 100.0)
        assert est.rate(0.6) == pytest.approx(200.0)
        assert est.rate(1.4) == pytest.approx(100.0)
        assert est.rate(5.0) == 0.0

    def test_is_heavy(self):
        est = VolumeRateEstimator(window=1.0)
        for i in range(100):
            est.observe(i * 0.01, 400.0)
        assert est.is_heavy(1.0, critical_units_per_second=30000.0)
        assert not est.is_heavy(1.0, critical_units_per_second=50000.0)

    def test_negative_volume_rejected(self):
        est = VolumeRateEstimator()
        with pytest.raises(ValueError):
            est.observe(0.0, -1.0)

    def test_non_monotone_times_rejected(self):
        est = VolumeRateEstimator()
        est.observe(1.0, 1.0)
        with pytest.raises(ValueError):
            est.observe(0.5, 1.0)
