"""Tests for the AES/BQ mode controller (compensation policy)."""

from __future__ import annotations

import pytest

from repro.core.modes import ExecutionMode, ModeController
from repro.quality.functions import ExponentialQuality
from repro.quality.monitor import QualityMonitor

F = ExponentialQuality(c=0.003, x_max=1000.0)


def make(compensated=True, q_target=0.9):
    monitor = QualityMonitor(F)
    return monitor, ModeController(monitor, q_target, compensated=compensated)


def test_starts_in_aes():
    _, ctl = make()
    assert ctl.mode is ExecutionMode.AES


def test_switches_to_bq_below_target():
    monitor, ctl = make()
    monitor.record(0.0, 500.0)  # quality 0
    assert ctl.decide(1.0) is ExecutionMode.BQ
    assert ctl.switches == 1


def test_switches_back_when_recovered():
    monitor, ctl = make()
    monitor.record(0.0, 500.0)
    ctl.decide(1.0)
    for _ in range(50):
        monitor.record(500.0, 500.0)
    assert ctl.decide(2.0) is ExecutionMode.AES
    assert ctl.switches == 2


def test_no_compensation_never_leaves_aes():
    monitor, ctl = make(compensated=False)
    monitor.record(0.0, 500.0)
    assert ctl.decide(1.0) is ExecutionMode.AES
    assert ctl.switches == 0


def test_at_target_stays_aes():
    monitor, ctl = make()
    # Land the quality just barely at/above the 0.9 target.
    monitor.record(F.inverse_exact(0.9 * float(F(500.0))) + 1e-6, 500.0)
    assert monitor.quality == pytest.approx(0.9, abs=1e-6)
    assert monitor.quality >= 0.9
    assert ctl.decide(1.0) is ExecutionMode.AES


def test_aes_fraction_integrates_timeline():
    monitor, ctl = make()
    # AES on [0, 4), BQ on [4, 10).
    monitor.record(0.0, 500.0)
    ctl.decide(4.0)
    assert ctl.aes_fraction(10.0) == pytest.approx(0.4)


def test_aes_fraction_before_any_decision_is_one():
    _, ctl = make()
    assert ctl.aes_fraction() == 1.0


def test_force_mode():
    monitor, ctl = make()
    ctl.force(ExecutionMode.BQ, 2.0)
    assert ctl.mode is ExecutionMode.BQ
    assert ctl.switches == 1
    assert ctl.aes_fraction(4.0) == pytest.approx(0.5)


def test_invalid_target():
    monitor = QualityMonitor(F)
    with pytest.raises(ValueError):
        ModeController(monitor, 0.0)
    with pytest.raises(ValueError):
        ModeController(monitor, 1.2)
