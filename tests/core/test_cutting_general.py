"""Tests for the mixed-class (per-job quality function) cut kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cutting import lf_cut_waterline
from repro.core.cutting_general import inverse_marginal, lf_cut_mixed
from repro.quality.functions import ExponentialQuality, LinearQuality, LogQuality

F_SEARCH = ExponentialQuality(c=0.003, x_max=1000.0)
F_VIDEO = ExponentialQuality(c=0.0009, x_max=1000.0)
F_LOG = LogQuality(k=0.01, x_max=1000.0)


def aggregate(functions, targets, demands):
    a = sum(float(f(c)) for f, c in zip(functions, targets))
    p = sum(float(f(d)) for f, d in zip(functions, demands))
    return a / p


class TestInverseMarginal:
    def test_round_trip(self):
        for x in (10.0, 200.0, 700.0):
            slope = float(F_SEARCH.derivative(x))
            assert inverse_marginal(F_SEARCH, slope) == pytest.approx(x, abs=1e-3)

    def test_zero_slope_returns_xmax(self):
        assert inverse_marginal(F_SEARCH, 0.0) == F_SEARCH.x_max

    def test_huge_slope_returns_zero(self):
        assert inverse_marginal(F_SEARCH, 1e9) == 0.0

    def test_linear_function_is_all_or_nothing(self):
        f = LinearQuality(x_max=1000.0)
        slope = 1.0 / 1000.0
        assert inverse_marginal(f, slope * 2) == 0.0
        assert inverse_marginal(f, slope / 2) == f.x_max


class TestMixedCut:
    def test_reduces_to_shared_waterline(self):
        """With identical functions the mixed cut equals the paper's."""
        demands = [900.0, 620.0, 380.0, 180.0]
        functions = [F_SEARCH] * 4
        mixed = lf_cut_mixed(functions, demands, 0.9)
        classic = lf_cut_waterline(F_SEARCH, demands, 0.9)
        assert np.allclose(mixed, classic, atol=1.0)

    def test_hits_target(self):
        functions = [F_SEARCH, F_VIDEO, F_LOG, F_SEARCH]
        demands = [800.0, 900.0, 500.0, 300.0]
        targets = lf_cut_mixed(functions, demands, 0.85)
        q = aggregate(functions, targets, demands)
        assert q == pytest.approx(0.85, abs=5e-3)

    def test_respects_bounds(self):
        functions = [F_SEARCH, F_VIDEO]
        demands = [500.0, 500.0]
        targets = lf_cut_mixed(functions, demands, 0.7)
        assert np.all(targets >= 0)
        assert np.all(targets <= np.asarray(demands) + 1e-9)

    def test_steeper_class_is_cut_less(self):
        """Equal demands, different concavity: the class whose marginal
        quality stays higher (larger c) keeps more volume... wait — a
        larger c means the head is worth more and the tail less, so the
        *less* concave class keeps MORE volume at the common λ."""
        functions = [F_SEARCH, F_VIDEO]  # c=0.003 vs c=0.0009
        demands = [800.0, 800.0]
        targets = lf_cut_mixed(functions, demands, 0.8)
        # F_VIDEO's marginal quality decays slower, so at the common λ
        # it is cut less deeply than the sharply-saturating F_SEARCH.
        assert targets[1] > targets[0]

    def test_mixed_beats_naive_common_waterline_in_volume(self):
        """The KKT cut keeps no more volume than cutting both classes
        with a single common volume waterline at the same quality."""
        functions = [F_SEARCH] * 3 + [F_VIDEO] * 3
        demands = [700.0, 500.0, 300.0] * 2
        q_target = 0.85
        mixed = lf_cut_mixed(functions, demands, q_target)

        # Naive: one volume level L for everyone, solved to hit target.
        lo, hi = 0.0, 1000.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            q = aggregate(functions, np.minimum(demands, mid), demands)
            if q < q_target:
                lo = mid
            else:
                hi = mid
        naive = np.minimum(demands, hi)
        assert float(np.sum(mixed)) <= float(np.sum(naive)) + 1.0

    def test_target_one_keeps_everything(self):
        functions = [F_SEARCH, F_VIDEO]
        demands = [500.0, 400.0]
        targets = lf_cut_mixed(functions, demands, 1.0)
        assert targets == pytest.approx(demands)

    def test_empty_input(self):
        assert lf_cut_mixed([], [], 0.9).size == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lf_cut_mixed([F_SEARCH], [100.0, 200.0], 0.9)
        with pytest.raises(ValueError):
            lf_cut_mixed([F_SEARCH], [0.0], 0.9)
        with pytest.raises(ValueError):
            lf_cut_mixed([F_SEARCH], [100.0], 1.5)

    @settings(max_examples=30, deadline=None)
    @given(
        demands=st.lists(st.floats(min_value=50.0, max_value=1000.0), min_size=1, max_size=8),
        q=st.floats(min_value=0.3, max_value=0.99),
        split=st.integers(min_value=0, max_value=8),
    )
    def test_property_target_met_with_mixed_classes(self, demands, q, split):
        functions = [F_SEARCH if i < split else F_VIDEO for i in range(len(demands))]
        targets = lf_cut_mixed(functions, demands, q)
        achieved = aggregate(functions, targets, demands)
        assert achieved >= q - 1e-2
        assert np.all(targets <= np.asarray(demands) + 1e-9)


class TestMixedCutEdgeShapes:
    """S4 edge shapes: the KKT bisection must behave on the degenerate
    batches the scheduler actually produces — a single job, and a batch
    of identical jobs (where the problem collapses to one variable)."""

    def test_single_job_hits_target_exactly(self):
        # One job: the constraint is f(c) = q · f(p), directly invertible.
        p, q = 800.0, 0.8
        targets = lf_cut_mixed([F_SEARCH], [p], q)
        assert targets.shape == (1,)
        expected = F_SEARCH.inverse(q * float(F_SEARCH(p)))
        assert float(targets[0]) == pytest.approx(expected, abs=1e-2)
        assert aggregate([F_SEARCH], targets, [p]) == pytest.approx(q, abs=1e-3)

    def test_single_job_generous_target_keeps_demand(self):
        # f(p)/f(p) = 1 >= q for any q <= 1, but only q == 1 forbids
        # cutting entirely; below that the cut trims the free tail.
        targets = lf_cut_mixed([F_SEARCH], [300.0], 1.0)
        assert float(targets[0]) == pytest.approx(300.0)

    def test_all_equal_demands_get_equal_targets(self):
        n, p, q = 6, 750.0, 0.85
        targets = lf_cut_mixed([F_SEARCH] * n, [p] * n, q)
        assert np.max(targets) - np.min(targets) < 1e-6
        assert aggregate([F_SEARCH] * n, targets, [p] * n) == pytest.approx(
            q, abs=5e-3
        )

    def test_all_equal_demands_match_shared_waterline(self):
        n, p, q = 5, 900.0, 0.8
        mixed = lf_cut_mixed([F_SEARCH] * n, [p] * n, q)
        classic = lf_cut_waterline(F_SEARCH, [p] * n, q)
        assert np.allclose(mixed, classic, atol=1.0)
