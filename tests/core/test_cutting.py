"""Tests for Longest-First job cutting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cutting import lf_cut_stepwise, lf_cut_waterline
from repro.quality.functions import ExponentialQuality, LinearQuality

F = ExponentialQuality(c=0.003, x_max=1000.0)


def batch_quality(targets, demands, base_a=0.0, base_p=0.0):
    a = base_a + float(np.sum(F(np.asarray(targets))))
    p = base_p + float(np.sum(F(np.asarray(demands))))
    return a / p


CUTTERS = [lf_cut_waterline, lf_cut_stepwise]


@pytest.mark.parametrize("cut", CUTTERS, ids=["waterline", "stepwise"])
class TestCutContract:
    def test_hits_target_quality(self, cut):
        demands = [900.0, 620.0, 380.0, 180.0]
        targets = cut(F, demands, 0.9)
        assert batch_quality(targets, demands) == pytest.approx(0.9, abs=1e-3)

    def test_never_exceeds_demand(self, cut):
        demands = [900.0, 620.0, 380.0, 180.0]
        targets = cut(F, demands, 0.85)
        assert np.all(targets <= np.asarray(demands) + 1e-9)
        assert np.all(targets >= 0.0)

    def test_longest_cut_first(self, cut):
        """Shorter jobs keep their full demand while longer ones are cut."""
        demands = np.array([1000.0, 100.0])
        targets = cut(F, demands, 0.95)
        assert targets[1] == pytest.approx(100.0)
        assert targets[0] < 1000.0

    def test_cut_jobs_share_a_level(self, cut):
        demands = np.array([1000.0, 900.0, 800.0, 50.0])
        targets = cut(F, demands, 0.8)
        cut_mask = targets < demands - 1e-6
        levels = targets[cut_mask]
        assert levels.size >= 2
        assert np.allclose(levels, levels[0], atol=1e-2)

    def test_target_one_means_no_cut(self, cut):
        demands = [500.0, 300.0]
        targets = cut(F, demands, 1.0)
        assert targets == pytest.approx(demands)

    def test_empty_batch(self, cut):
        assert cut(F, [], 0.9).size == 0

    def test_preserves_input_order(self, cut):
        demands = [100.0, 1000.0, 500.0]
        targets = cut(F, demands, 0.9)
        # Job 0 is shortest: never cut below longer jobs' level.
        assert targets[0] == pytest.approx(100.0)
        assert targets[1] <= 1000.0

    def test_invalid_inputs(self, cut):
        with pytest.raises(ValueError):
            cut(F, [0.0], 0.9)
        with pytest.raises(ValueError):
            cut(F, [10.0], 0.0)
        with pytest.raises(ValueError):
            cut(F, [10.0], 1.5)

    def test_underwater_history_disables_cutting(self, cut):
        """If history already sank the quality below target, the cut
        returns full demands (BQ handles the rest)."""
        demands = [500.0, 500.0]
        base_p = 100 * float(F(500.0))
        base_a = 0.5 * base_p  # history quality 0.5 << 0.9
        targets = cut(F, demands, 0.9, base_achieved=base_a, base_potential=base_p)
        assert targets == pytest.approx(demands)

    def test_surplus_history_cuts_deeper(self, cut):
        demands = [500.0, 500.0]
        plain = cut(F, demands, 0.9)
        base_p = 100 * float(F(500.0))
        subsidized = cut(F, demands, 0.9, base_achieved=base_p, base_potential=base_p)
        assert float(np.sum(subsidized)) < float(np.sum(plain))


def test_waterline_and_stepwise_agree():
    rng = np.random.default_rng(0)
    for _ in range(25):
        n = rng.integers(1, 12)
        demands = rng.uniform(50.0, 1000.0, n)
        q = rng.uniform(0.5, 0.99)
        a = lf_cut_waterline(F, demands, q)
        b = lf_cut_stepwise(F, demands, q)
        assert np.allclose(a, b, atol=0.5), (demands, q, a, b)


def test_linear_quality_cut_is_proportionalish():
    """With linear f the cut still hits the target exactly."""
    f = LinearQuality(x_max=1000.0)
    demands = [1000.0, 500.0]
    targets = lf_cut_waterline(f, demands, 0.8)
    achieved = (targets[0] + targets[1]) / (1000.0 + 500.0)
    assert achieved == pytest.approx(0.8, abs=1e-3)


def test_concavity_saves_work():
    """At Q=0.9 the concave cut removes much more than 10% of volume —
    the whole premise of the paper."""
    demands = np.full(20, 800.0)
    targets = lf_cut_waterline(F, demands, 0.9)
    volume_kept = float(np.sum(targets)) / float(np.sum(demands))
    assert volume_kept < 0.75


@settings(max_examples=80, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=25),
    q=st.floats(min_value=0.05, max_value=0.999),
)
def test_property_quality_hits_target(demands, q):
    targets = lf_cut_waterline(F, demands, q)
    achieved = batch_quality(targets, demands)
    assert achieved == pytest.approx(q, abs=5e-3) or achieved >= q


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=15),
    q=st.floats(min_value=0.3, max_value=0.99),
)
def test_property_monotone_in_demand_order(demands, q):
    """Longer jobs never end up with smaller targets than shorter ones
    get cut to — the LF (longest-first) property."""
    targets = lf_cut_waterline(F, demands, q)
    order = np.argsort(demands)
    sorted_targets = np.asarray(targets)[order]
    assert np.all(np.diff(sorted_targets) >= -1e-6)


# ---------------------------------------------------------------------------
# S1: the waterline cut must land on the *feasible* side of the target —
# returned targets never leave aggregate quality below q_target when
# cutting actually happened.
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=20),
    q=st.floats(min_value=0.05, max_value=0.999),
)
def test_property_waterline_feasible_side(demands, q):
    targets = lf_cut_waterline(F, demands, q)
    full_q = batch_quality(demands, demands)
    if full_q <= q:
        # Cannot afford cutting: targets must be the full demands.
        assert np.asarray(targets).tolist() == [float(d) for d in demands]
    else:
        assert batch_quality(targets, demands) >= q - 1e-9


@settings(max_examples=80, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=12),
    q=st.floats(min_value=0.3, max_value=0.99),
    base_a=st.floats(min_value=0.0, max_value=50.0),
    base_extra=st.floats(min_value=0.0, max_value=30.0),
)
def test_property_waterline_feasible_side_with_history(demands, q, base_a, base_extra):
    """The guarantee holds on top of monitor history (base terms)."""
    base_p = base_a + base_extra  # potential >= achieved, as the monitor keeps it
    targets = lf_cut_waterline(
        F, demands, q, base_achieved=base_a, base_potential=base_p
    )
    full_q = batch_quality(demands, demands, base_a=base_a, base_p=base_p)
    if full_q > q:
        assert batch_quality(targets, demands, base_a=base_a, base_p=base_p) >= q - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=12),
    q=st.floats(min_value=0.3, max_value=0.99),
)
def test_property_waterline_vs_stepwise_agree(demands, q):
    """Regression vs the paper-literal procedure: same quality outcome
    and near-identical targets."""
    wl = lf_cut_waterline(F, demands, q)
    sw = lf_cut_stepwise(F, demands, q)
    assert batch_quality(wl, demands) == pytest.approx(
        batch_quality(sw, demands), abs=5e-3
    )
    assert np.allclose(wl, sw, atol=1e-2 * max(demands))


# ---------------------------------------------------------------------------
# S3: the _batch_quality empty/zero-potential convention, pinned.
# ---------------------------------------------------------------------------


class TestBatchQualityConvention:
    def test_empty_batch_zero_history_is_vacuous_one(self):
        from repro.core.cutting import _batch_quality
        from repro.quality.aggregate import quality_ratio

        empty = np.zeros(0)
        assert quality_ratio(0.0, 0.0) == 1.0
        assert _batch_quality(F, empty, empty, 0.0, 0.0) == 1.0

    def test_empty_batch_with_history_is_the_history_ratio(self):
        from repro.core.cutting import _batch_quality
        from repro.quality.aggregate import quality_ratio

        empty = np.zeros(0)
        assert _batch_quality(F, empty, empty, 3.0, 4.0) == quality_ratio(3.0, 4.0)
        assert _batch_quality(F, empty, empty, 3.0, 4.0) == pytest.approx(0.75)

    def test_matches_quality_ratio_on_real_batches(self):
        from repro.core.cutting import _batch_quality
        from repro.quality.aggregate import quality_ratio

        demands = np.array([500.0, 200.0])
        targets = np.array([300.0, 200.0])
        expected = quality_ratio(
            1.0 + float(np.sum(F(targets))), 2.0 + float(np.sum(F(demands)))
        )
        assert _batch_quality(F, targets, demands, 1.0, 2.0) == expected


# ---------------------------------------------------------------------------
# WaterlineMemo: the cross-round cache must be a pure, mutation-safe
# single-entry memo whose key covers every input that can change the cut.
# ---------------------------------------------------------------------------


class TestWaterlineMemo:
    def _cut(self, memo, demands, q=0.9, base_a=0.0, base_p=0.0):
        from repro.core.cutting import lf_cut_waterline

        return lf_cut_waterline(
            F, demands, q, base_achieved=base_a, base_potential=base_p, memo=memo
        )

    def test_hit_returns_equal_result_and_counts(self):
        from repro.core.cutting import WaterlineMemo

        memo = WaterlineMemo()
        demands = np.array([900.0, 620.0, 380.0])
        first = self._cut(memo, demands)
        assert (memo.hits, memo.misses) == (0, 1)
        second = self._cut(memo, demands)
        assert (memo.hits, memo.misses) == (1, 1)
        assert first.tolist() == second.tolist()

    def test_cached_result_is_mutation_safe(self):
        from repro.core.cutting import WaterlineMemo

        memo = WaterlineMemo()
        demands = np.array([900.0, 620.0, 380.0])
        first = self._cut(memo, demands)
        pristine = first.tolist()
        first[:] = -1.0  # caller trashes its copy
        second = self._cut(memo, demands)
        assert second.tolist() == pristine

    def test_any_key_component_change_misses(self):
        from repro.core.cutting import WaterlineMemo

        memo = WaterlineMemo()
        demands = np.array([900.0, 620.0, 380.0])
        self._cut(memo, demands)
        self._cut(memo, np.array([900.0, 620.0, 381.0]))  # demands changed
        assert memo.hits == 0
        self._cut(memo, np.array([900.0, 620.0, 381.0]), q=0.8)  # target changed
        assert memo.hits == 0
        self._cut(memo, np.array([900.0, 620.0, 381.0]), q=0.8, base_a=1.0, base_p=2.0)
        assert memo.hits == 0  # history changed
        self._cut(memo, np.array([900.0, 620.0, 381.0]), q=0.8, base_a=1.0, base_p=2.0)
        assert memo.hits == 1
        assert memo.misses == 4

    def test_memoized_equals_unmemoized(self):
        from repro.core.cutting import WaterlineMemo

        rng = np.random.default_rng(11)
        memo = WaterlineMemo()
        for _ in range(30):
            demands = rng.uniform(1.0, 1000.0, int(rng.integers(1, 10)))
            q = float(rng.uniform(0.3, 0.99))
            plain = lf_cut_waterline(F, demands, q)
            memod = self._cut(memo, demands, q=q)
            memod2 = self._cut(memo, demands, q=q)  # hit path
            assert plain.tolist() == memod.tolist() == memod2.tolist()
