"""Tests for Longest-First job cutting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cutting import lf_cut_stepwise, lf_cut_waterline
from repro.quality.functions import ExponentialQuality, LinearQuality

F = ExponentialQuality(c=0.003, x_max=1000.0)


def batch_quality(targets, demands, base_a=0.0, base_p=0.0):
    a = base_a + float(np.sum(F(np.asarray(targets))))
    p = base_p + float(np.sum(F(np.asarray(demands))))
    return a / p


CUTTERS = [lf_cut_waterline, lf_cut_stepwise]


@pytest.mark.parametrize("cut", CUTTERS, ids=["waterline", "stepwise"])
class TestCutContract:
    def test_hits_target_quality(self, cut):
        demands = [900.0, 620.0, 380.0, 180.0]
        targets = cut(F, demands, 0.9)
        assert batch_quality(targets, demands) == pytest.approx(0.9, abs=1e-3)

    def test_never_exceeds_demand(self, cut):
        demands = [900.0, 620.0, 380.0, 180.0]
        targets = cut(F, demands, 0.85)
        assert np.all(targets <= np.asarray(demands) + 1e-9)
        assert np.all(targets >= 0.0)

    def test_longest_cut_first(self, cut):
        """Shorter jobs keep their full demand while longer ones are cut."""
        demands = np.array([1000.0, 100.0])
        targets = cut(F, demands, 0.95)
        assert targets[1] == pytest.approx(100.0)
        assert targets[0] < 1000.0

    def test_cut_jobs_share_a_level(self, cut):
        demands = np.array([1000.0, 900.0, 800.0, 50.0])
        targets = cut(F, demands, 0.8)
        cut_mask = targets < demands - 1e-6
        levels = targets[cut_mask]
        assert levels.size >= 2
        assert np.allclose(levels, levels[0], atol=1e-2)

    def test_target_one_means_no_cut(self, cut):
        demands = [500.0, 300.0]
        targets = cut(F, demands, 1.0)
        assert targets == pytest.approx(demands)

    def test_empty_batch(self, cut):
        assert cut(F, [], 0.9).size == 0

    def test_preserves_input_order(self, cut):
        demands = [100.0, 1000.0, 500.0]
        targets = cut(F, demands, 0.9)
        # Job 0 is shortest: never cut below longer jobs' level.
        assert targets[0] == pytest.approx(100.0)
        assert targets[1] <= 1000.0

    def test_invalid_inputs(self, cut):
        with pytest.raises(ValueError):
            cut(F, [0.0], 0.9)
        with pytest.raises(ValueError):
            cut(F, [10.0], 0.0)
        with pytest.raises(ValueError):
            cut(F, [10.0], 1.5)

    def test_underwater_history_disables_cutting(self, cut):
        """If history already sank the quality below target, the cut
        returns full demands (BQ handles the rest)."""
        demands = [500.0, 500.0]
        base_p = 100 * float(F(500.0))
        base_a = 0.5 * base_p  # history quality 0.5 << 0.9
        targets = cut(F, demands, 0.9, base_achieved=base_a, base_potential=base_p)
        assert targets == pytest.approx(demands)

    def test_surplus_history_cuts_deeper(self, cut):
        demands = [500.0, 500.0]
        plain = cut(F, demands, 0.9)
        base_p = 100 * float(F(500.0))
        subsidized = cut(F, demands, 0.9, base_achieved=base_p, base_potential=base_p)
        assert float(np.sum(subsidized)) < float(np.sum(plain))


def test_waterline_and_stepwise_agree():
    rng = np.random.default_rng(0)
    for _ in range(25):
        n = rng.integers(1, 12)
        demands = rng.uniform(50.0, 1000.0, n)
        q = rng.uniform(0.5, 0.99)
        a = lf_cut_waterline(F, demands, q)
        b = lf_cut_stepwise(F, demands, q)
        assert np.allclose(a, b, atol=0.5), (demands, q, a, b)


def test_linear_quality_cut_is_proportionalish():
    """With linear f the cut still hits the target exactly."""
    f = LinearQuality(x_max=1000.0)
    demands = [1000.0, 500.0]
    targets = lf_cut_waterline(f, demands, 0.8)
    achieved = (targets[0] + targets[1]) / (1000.0 + 500.0)
    assert achieved == pytest.approx(0.8, abs=1e-3)


def test_concavity_saves_work():
    """At Q=0.9 the concave cut removes much more than 10% of volume —
    the whole premise of the paper."""
    demands = np.full(20, 800.0)
    targets = lf_cut_waterline(F, demands, 0.9)
    volume_kept = float(np.sum(targets)) / float(np.sum(demands))
    assert volume_kept < 0.75


@settings(max_examples=80, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=25),
    q=st.floats(min_value=0.05, max_value=0.999),
)
def test_property_quality_hits_target(demands, q):
    targets = lf_cut_waterline(F, demands, q)
    achieved = batch_quality(targets, demands)
    assert achieved == pytest.approx(q, abs=5e-3) or achieved >= q


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=15),
    q=st.floats(min_value=0.3, max_value=0.99),
)
def test_property_monotone_in_demand_order(demands, q):
    """Longer jobs never end up with smaller targets than shorter ones
    get cut to — the LF (longest-first) property."""
    targets = lf_cut_waterline(F, demands, q)
    order = np.argsort(demands)
    sorted_targets = np.asarray(targets)[order]
    assert np.all(np.diff(sorted_targets) >= -1e-6)
