"""Smoke tests for the example scripts.

Each example is importable as a module with a ``main()``; the cheap
ones are executed end-to-end (capturing stdout), the expensive ones are
only checked for importability so the suite stays fast — the benchmark
suite and CI docs cover running them for real.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "job_cutting_demo",
    "websearch_server",
    "capacity_planning",
    "custom_policy",
    "diurnal_load",
    "analysis_vs_simulation",
    "mixed_tenancy",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)


def test_job_cutting_demo_runs(capsys):
    load_example("job_cutting_demo").main()
    out = capsys.readouterr().out
    assert "aggregate quality after cut : 0.9000" in out
    assert "#" in out  # the bars rendered


def test_custom_policy_example_runs(capsys, monkeypatch):
    module = load_example("custom_policy")
    module.main()
    out = capsys.readouterr().out
    assert "G-EDF" in out and "GE" in out


def test_custom_policy_scheduler_passes_audit():
    """The example's scheduler is real code: audit it physically."""
    from repro.config import SimulationConfig
    from repro.server.harness import SimulationHarness
    from repro.validation import validate_run

    module = load_example("custom_policy")
    cfg = SimulationConfig(arrival_rate=120.0, horizon=3.0, seed=2)
    harness = SimulationHarness(cfg, module.GreedyEDFCut())
    harness.run()
    validate_run(harness).raise_if_failed()
