"""Integration tests for the GE scheduler."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_be, make_ge, make_oq
from repro.server.harness import SimulationHarness
from repro.workload.job import JobOutcome


def run(scheduler, **overrides):
    cfg = SimulationConfig(arrival_rate=120.0, horizon=6.0, seed=7).with_overrides(
        **overrides
    )
    return SimulationHarness(cfg, scheduler).run()


class TestGE:
    def test_holds_quality_target_under_light_load(self):
        result = run(make_ge())
        assert result.quality == pytest.approx(0.9, abs=0.02)

    def test_all_jobs_settle(self):
        result = run(make_ge())
        assert sum(result.outcomes.values()) == result.jobs

    def test_cut_jobs_exist_in_aes(self):
        result = run(make_ge())
        assert result.outcomes.get(JobOutcome.CUT.value, 0) > 0

    def test_aes_fraction_in_unit_interval(self):
        result = run(make_ge())
        assert 0.0 < result.aes_fraction <= 1.0

    def test_aes_fraction_decreases_with_load(self):
        """Fig. 1's shape at miniature scale."""
        light = run(make_ge(), arrival_rate=100.0)
        heavy = run(make_ge(), arrival_rate=200.0)
        assert heavy.aes_fraction < light.aes_fraction

    def test_deterministic_given_seed(self):
        a = run(make_ge())
        b = run(make_ge())
        assert a.quality == b.quality
        assert a.energy == b.energy
        assert a.outcomes == b.outcomes

    def test_different_seeds_differ(self):
        a = run(make_ge(), seed=1)
        b = run(make_ge(), seed=2)
        assert a.energy != b.energy

    def test_quality_degrades_gracefully_when_overloaded(self):
        result = run(make_ge(), arrival_rate=250.0)
        assert 0.5 < result.quality < 0.9

    def test_custom_quality_target(self):
        result = run(make_ge(), q_ge=0.8)
        assert result.quality == pytest.approx(0.8, abs=0.02)

    def test_respects_power_budget_on_average(self):
        result = run(make_ge(), arrival_rate=250.0)
        # Energy over the measured window can never exceed budget × time.
        assert result.energy <= 320.0 * result.duration * (1 + 1e-6)

    def test_reschedules_counted(self):
        scheduler = make_ge()
        run(scheduler)
        assert scheduler.reschedules > 10


class TestGEvsBE:
    def test_ge_saves_energy_vs_be(self):
        """The headline claim at miniature scale."""
        ge = run(make_ge())
        be = run(make_be())
        assert ge.energy < be.energy * 0.9  # ≥10 % saving at light load

    def test_be_has_higher_quality(self):
        ge = run(make_ge())
        be = run(make_be())
        assert be.quality > ge.quality
        assert be.quality > 0.97

    def test_be_rarely_cuts(self):
        """BE never cuts for quality; the only CUT outcomes come from
        the power-bound second cut (Quality-OPT), which should touch a
        tiny fraction of jobs at light load."""
        be = run(make_be())
        cut_fraction = be.outcomes.get(JobOutcome.CUT.value, 0) / be.jobs
        assert cut_fraction < 0.05

    def test_be_aes_fraction_is_zero(self):
        be = run(make_be())
        assert be.aes_fraction == pytest.approx(0.0, abs=0.01)


class TestOQ:
    def test_oq_targets_two_percent_more(self):
        oq = run(make_oq())
        assert oq.quality == pytest.approx(0.92, abs=0.02)

    def test_oq_never_compensates(self):
        scheduler = make_oq()
        run(scheduler)
        assert scheduler.controller.switches == 0


class TestVariants:
    def test_no_compensation_quality_below_compensated(self):
        comp = run(make_ge(), arrival_rate=150.0)
        nocomp = run(GEScheduler(name="NC", compensated=False), arrival_rate=150.0)
        assert nocomp.quality <= comp.quality + 1e-9
        assert nocomp.energy <= comp.energy

    def test_es_saves_energy_at_light_load(self):
        wf = run(GEScheduler(name="WF", distribution="wf"), arrival_rate=100.0)
        es = run(GEScheduler(name="ES", distribution="es"), arrival_rate=100.0)
        assert es.energy <= wf.energy
        assert es.quality == pytest.approx(wf.quality, abs=0.02)

    def test_wf_variance_exceeds_es(self):
        wf = run(GEScheduler(name="WF", distribution="wf"), arrival_rate=100.0)
        es = run(GEScheduler(name="ES", distribution="es"), arrival_rate=100.0)
        assert wf.speed_variance > es.speed_variance

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            GEScheduler(distribution="nope")  # type: ignore[arg-type]

    def test_cut_with_history_cuts_deeper(self):
        plain = run(make_ge(), arrival_rate=100.0)
        hist = run(GEScheduler(name="GE-H", cut_with_history=True), arrival_rate=100.0)
        assert hist.completed_volume <= plain.completed_volume
