"""Integration tests for the FCFS/FDFS/LJF/SJF baselines."""

from __future__ import annotations

import pytest

from repro.baselines.queue_order import FCFS, FDFS, LJF, SJF
from repro.config import SimulationConfig
from repro.server.harness import SimulationHarness
from repro.workload.generator import StaticWorkload
from repro.workload.job import Job, JobOutcome


def run(factory, rate=120.0, seed=7, **overrides):
    cfg = SimulationConfig(arrival_rate=rate, horizon=6.0, seed=seed).with_overrides(
        **overrides
    )
    return SimulationHarness(cfg, factory()).run()


@pytest.mark.parametrize("factory", [FCFS, FDFS, LJF, SJF], ids=lambda f: f.__name__)
class TestCommon:
    def test_all_jobs_settle(self, factory):
        result = run(factory)
        assert sum(result.outcomes.values()) == result.jobs

    def test_no_deliberate_cutting(self, factory):
        """One-at-a-time baselines never CUT; they complete or expire."""
        result = run(factory)
        assert result.outcomes.get(JobOutcome.CUT.value, 0) == 0

    def test_deterministic(self, factory):
        a = run(factory)
        b = run(factory)
        assert (a.quality, a.energy) == (b.quality, b.energy)

    def test_quality_degrades_with_load(self, factory):
        light = run(factory, rate=100.0)
        heavy = run(factory, rate=220.0)
        assert heavy.quality < light.quality


class TestOrdering:
    """Verify each policy picks by its defining key using a crafted queue."""

    def _run_static(self, factory, jobs, m=1):
        cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=m, seed=1)
        harness = SimulationHarness(cfg, factory(), workload=StaticWorkload(jobs))
        harness.run()
        return jobs

    def test_fcfs_picks_earliest_arrival(self):
        # Both jobs arrive while the core is busy; FCFS then picks jid 1.
        jobs = [
            Job(jid=0, arrival=0.00, deadline=0.40, demand=200.0),  # occupies core
            Job(jid=1, arrival=0.01, deadline=0.80, demand=100.0),
            Job(jid=2, arrival=0.02, deadline=0.50, demand=100.0),
        ]
        self._run_static(FCFS, jobs)
        assert jobs[1].outcome is JobOutcome.COMPLETED

    def test_fdfs_picks_earliest_deadline(self):
        jobs = [
            Job(jid=0, arrival=0.00, deadline=0.40, demand=200.0),
            Job(jid=1, arrival=0.01, deadline=0.80, demand=100.0),
            Job(jid=2, arrival=0.02, deadline=0.50, demand=100.0),
        ]
        self._run_static(FDFS, jobs)
        # FDFS serves jid 2 (deadline 0.5) before jid 1.
        assert jobs[2].outcome is JobOutcome.COMPLETED

    def test_ljf_picks_longest(self):
        jobs = [
            Job(jid=0, arrival=0.00, deadline=0.40, demand=200.0),
            Job(jid=1, arrival=0.01, deadline=2.00, demand=900.0),
            Job(jid=2, arrival=0.02, deadline=2.00, demand=100.0),
        ]
        self._run_static(LJF, jobs)
        assert jobs[1].processed > 0.0

    def test_sjf_picks_shortest(self):
        jobs = [
            Job(jid=0, arrival=0.00, deadline=0.40, demand=200.0),
            Job(jid=1, arrival=0.01, deadline=0.55, demand=900.0),
            Job(jid=2, arrival=0.02, deadline=2.00, demand=100.0),
        ]
        self._run_static(SJF, jobs)
        assert jobs[2].outcome is JobOutcome.COMPLETED

    def test_infeasible_job_runs_partially_to_deadline(self):
        # With a 20 W budget on one core the cap is 2 GHz; 2000 units
        # due in 0.5 s would need 4 GHz, so the core runs at the cap and
        # the job expires with 2000 u/s · 0.5 s = 1000 units done.
        jobs = [Job(jid=0, arrival=0.0, deadline=0.5, demand=2000.0)]
        cfg = SimulationConfig(arrival_rate=100.0, horizon=1.0, m=1, budget=20.0, seed=1)
        harness = SimulationHarness(cfg, FCFS(), workload=StaticWorkload(jobs))
        harness.run()
        assert jobs[0].outcome is JobOutcome.EXPIRED
        assert jobs[0].processed == pytest.approx(1000.0, rel=1e-6)


def test_fdfs_beats_fcfs_with_random_deadlines():
    """Fig. 4's key contrast at miniature scale."""
    overrides = dict(window_low=0.15, window_high=0.5)
    fcfs = run(FCFS, rate=150.0, **overrides)
    fdfs = run(FDFS, rate=150.0, **overrides)
    assert fdfs.quality > fcfs.quality


def test_sjf_energy_decreases_under_overload():
    """Fig. 3b: SJF abandons long jobs as load grows."""
    mid = run(SJF, rate=150.0)
    high = run(SJF, rate=250.0)
    assert high.energy < mid.energy * 1.05
