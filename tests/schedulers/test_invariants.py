"""Property-based end-to-end invariants of the full system.

Hypothesis drives random small workloads through GE (and BE) and checks
the invariants that must hold for *any* input:

* every job settles exactly once, with a final outcome;
* processed volume never exceeds demand; no progress after settlement;
* total dynamic energy never exceeds budget × wall time;
* aggregate quality is in [0, 1] and matches recomputing Σf(c)/Σf(p)
  from the jobs directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.core.ge import make_be, make_ge
from repro.server.harness import SimulationHarness
from repro.workload.generator import StaticWorkload
from repro.workload.job import Job


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    jobs = []
    for i in range(n):
        arrival = draw(st.floats(min_value=0.0, max_value=2.0))
        window = draw(st.floats(min_value=0.02, max_value=0.5))
        demand = draw(st.floats(min_value=1.0, max_value=1000.0))
        jobs.append(
            Job(jid=i, arrival=arrival, deadline=arrival + window, demand=demand)
        )
    return jobs


def check_invariants(jobs, result, config):
    assert result.jobs == len(jobs)
    assert sum(result.outcomes.values()) == len(jobs)
    for job in jobs:
        assert job.settled
        assert 0.0 <= job.processed <= job.demand + 1e-6
    assert 0.0 <= result.quality <= 1.0 + 1e-9
    # Energy can never exceed the budget over the measured window.
    assert result.energy <= config.budget * result.duration * (1 + 1e-6)
    # The reported quality equals direct recomputation from the jobs.
    f = config.quality_function()
    achieved = sum(float(f(j.processed)) for j in jobs)
    potential = sum(float(f(j.demand)) for j in jobs)
    expected = achieved / potential if potential else 1.0
    assert result.quality == pytest.approx(expected, abs=1e-9)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(jobs=workloads())
def test_ge_invariants_on_random_workloads(jobs):
    config = SimulationConfig(arrival_rate=100.0, horizon=3.0, m=4, seed=1)
    fresh = [Job(jid=j.jid, arrival=j.arrival, deadline=j.deadline, demand=j.demand) for j in jobs]
    result = SimulationHarness(config, make_ge(), workload=StaticWorkload(fresh)).run()
    check_invariants(fresh, result, config)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(jobs=workloads())
def test_be_invariants_on_random_workloads(jobs):
    config = SimulationConfig(arrival_rate=100.0, horizon=3.0, m=4, seed=1)
    fresh = [Job(jid=j.jid, arrival=j.arrival, deadline=j.deadline, demand=j.demand) for j in jobs]
    result = SimulationHarness(config, make_be(), workload=StaticWorkload(fresh)).run()
    check_invariants(fresh, result, config)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(jobs=workloads(), seed=st.integers(min_value=0, max_value=2**16))
def test_ge_quality_never_below_be_minus_margin(jobs, seed):
    """GE may trade quality for energy, but relative to BE on the same
    jobs it can only give up the cutting margin (1 − Q_GE) plus the
    second-cut loss when a job is power-infeasible even uncut — bounded
    here by an extra 0.15 allowance on tiny adversarial batches."""
    config = SimulationConfig(arrival_rate=100.0, horizon=3.0, m=4, seed=1)

    def fresh():
        return [
            Job(jid=j.jid, arrival=j.arrival, deadline=j.deadline, demand=j.demand)
            for j in jobs
        ]

    ge = SimulationHarness(config, make_ge(), workload=StaticWorkload(fresh())).run()
    be = SimulationHarness(config, make_be(), workload=StaticWorkload(fresh())).run()
    assert ge.quality >= be.quality - (1.0 - config.q_ge) - 0.15
