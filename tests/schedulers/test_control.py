"""Tests for the BE-P / BE-S calibrated control policies."""

from __future__ import annotations

import pytest

from repro.baselines.control import (
    calibrate_power_control,
    calibrate_speed_control,
)
from repro.config import SimulationConfig

CFG = SimulationConfig(arrival_rate=110.0, horizon=5.0, seed=7)


@pytest.fixture(scope="module")
def bep():
    return calibrate_power_control(CFG, calibration_horizon=5.0, iterations=5)


@pytest.fixture(scope="module")
def bes():
    return calibrate_speed_control(CFG, calibration_horizon=5.0, iterations=5)


class TestPowerControl:
    def test_calibrated_budget_below_full(self, bep):
        """At light load, much less than 320 W meets Q_GE."""
        assert bep.value < CFG.budget

    def test_final_run_meets_target_roughly(self, bep):
        assert bep.result.quality >= CFG.q_ge - 0.03

    def test_final_run_labeled(self, bep):
        assert bep.result.scheduler == "BE-P"

    def test_probes_recorded(self, bep):
        assert len(bep.probes) >= 2
        knobs = [k for k, _ in bep.probes]
        assert max(knobs) == CFG.budget

    def test_uses_less_energy_than_full_budget_be(self, bep):
        from repro.core.ge import make_be
        from repro.server.harness import SimulationHarness

        be = SimulationHarness(CFG, make_be()).run()
        assert bep.result.energy < be.energy


class TestSpeedControl:
    def test_calibrated_speed_below_max(self, bes):
        top = CFG.power_model().speed(CFG.budget)
        assert bes.value < top

    def test_final_run_meets_target_roughly(self, bes):
        assert bes.result.quality >= CFG.q_ge - 0.03

    def test_final_run_labeled(self, bes):
        assert bes.result.scheduler == "BE-S"


def test_overload_returns_full_knob():
    """When even the full budget misses the target, calibration returns
    the full knob (the paper's 'all three coincide under overload')."""
    overloaded = CFG.with_overrides(arrival_rate=260.0, horizon=4.0)
    result = calibrate_power_control(overloaded, calibration_horizon=4.0, iterations=3)
    assert result.value == overloaded.budget
