"""Tests for the clairvoyant (offline-cut) reference scheduler."""

from __future__ import annotations

import pytest

from repro.baselines.clairvoyant import make_oracle
from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.server.harness import SimulationHarness
from repro.validation import validate_run


def run(factory, **overrides):
    cfg = SimulationConfig(arrival_rate=120.0, horizon=5.0, seed=7).with_overrides(
        **overrides
    )
    harness = SimulationHarness(cfg, factory())
    return harness, harness.run()


def test_oracle_lands_on_target():
    """With full knowledge and light load, the offline cut hits Q_GE
    essentially exactly (no compensation oscillation)."""
    _, result = run(make_oracle)
    assert result.quality == pytest.approx(0.9, abs=0.015)


def test_oracle_never_compensates():
    harness, _ = run(make_oracle)
    assert harness.scheduler.controller.switches == 0


def test_oracle_targets_are_stable():
    """The offline target of a job never changes across reschedules —
    that is the whole point (no online wobble)."""
    harness, _ = run(make_oracle)
    sched = harness.scheduler
    jobs = harness.workload.materialize()
    # Spot check: the stored target is a single consistent value <= demand.
    for job in jobs[:50]:
        assert 0.0 <= sched._offline_targets[job.jid] <= job.demand + 1e-9


def test_oracle_saves_energy_vs_online_ge():
    """The oracle bounds the price of online operation from below."""
    _, online = run(make_ge)
    _, oracle = run(make_oracle)
    assert oracle.energy <= online.energy * 1.02
    assert oracle.quality == pytest.approx(online.quality, abs=0.03)


def test_oracle_passes_physical_audit():
    harness, _ = run(make_oracle)
    validate_run(harness).raise_if_failed()


def test_oracle_under_overload_degrades_like_ge():
    _, oracle = run(make_oracle, arrival_rate=240.0)
    _, online = run(make_ge, arrival_rate=240.0)
    assert oracle.quality == pytest.approx(online.quality, abs=0.05)
