"""White-box tests of GE's trigger handling and bookkeeping."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.ge import GEScheduler, make_ge
from repro.core.modes import ExecutionMode
from repro.server.harness import SimulationHarness
from repro.workload.generator import StaticWorkload
from repro.workload.job import Job


def harness_with(jobs, scheduler=None, **overrides):
    cfg = SimulationConfig(arrival_rate=100.0, horizon=2.0, m=2, seed=1).with_overrides(
        **overrides
    )
    sched = scheduler or make_ge()
    return SimulationHarness(cfg, sched, workload=StaticWorkload(jobs)), sched


def burst(n, at=0.0, demand=150.0, window=0.15, start_jid=0):
    return [
        Job(jid=start_jid + i, arrival=at + i * 1e-4, deadline=at + i * 1e-4 + window, demand=demand)
        for i in range(n)
    ]


class TestTriggers:
    def test_counter_trigger_fires_at_threshold(self):
        """With all cores busy, the queue must reach the counter
        threshold before a batch reschedule happens."""
        jobs = burst(12, window=0.5)
        h, sched = harness_with(jobs, counter_threshold=8)
        reschedules = []
        original = sched.reschedule

        def spy():
            reschedules.append((h.sim.now, len(h.queue)))
            original()

        sched.reschedule = spy
        h.run()
        assert reschedules, "no reschedule happened"
        # The first trigger is the idle-arrival one (cores start idle).
        assert reschedules[0][1] >= 1

    def test_idle_arrival_trigger(self):
        """A single job arriving to an all-idle machine is scheduled
        immediately, not after the quantum."""
        job = Job(jid=0, arrival=0.3, deadline=0.45, demand=150.0)
        h, sched = harness_with([job])
        h.run()
        # Scheduled at arrival: completed or cut well before deadline.
        assert job.settled
        assert job.processed > 0

    def test_quantum_trigger_reschedules_periodically(self):
        jobs = burst(4, window=1.8)
        h, sched = harness_with(jobs, quantum=0.25)
        h.run()
        # At least horizon/quantum quantum ticks plus arrival triggers.
        assert sched.reschedules >= 6

    def test_jobs_never_migrate(self):
        jobs = burst(20, window=0.4)
        h, _ = harness_with(jobs)
        h.run()
        # Job.assign raises on migration, so reaching the end settled
        # with a core set proves single-core execution.
        for job in jobs:
            assert job.settled
            if job.processed > 0:
                assert job.core is not None

    def test_crr_spreads_batch_across_cores(self):
        jobs = burst(8, window=0.5)
        h, _ = harness_with(jobs, m=4)
        h.run()
        used_cores = {j.core for j in jobs if j.core is not None}
        assert len(used_cores) == 4


class TestCompensation:
    def test_mode_switches_after_quality_crash(self):
        """A burst too large to serve forces expirations; the next
        trigger must switch to BQ."""
        # 30 big jobs into 2 cores with 150 ms deadlines: hopeless.
        jobs = burst(30, demand=900.0, window=0.15)
        # Follow-up trickle the scheduler can complete in BQ mode.
        jobs += burst(10, at=1.0, demand=150.0, window=0.4, start_jid=100)
        ge = make_ge()
        h, sched = harness_with(jobs, scheduler=ge)
        h.run()
        assert sched.controller.switches >= 1
        # After the crash the monitor is below target, so the last jobs
        # ran in BQ mode: the trickle must be fully completed.
        late = [j for j in jobs if j.arrival >= 1.0]
        assert all(j.outcome.value == "completed" for j in late)

    def test_no_compensation_stays_aes_after_crash(self):
        jobs = burst(30, demand=900.0, window=0.15)
        sched = GEScheduler(name="NC", compensated=False)
        h, _ = harness_with(jobs, scheduler=sched)
        h.run()
        assert sched.controller.mode is ExecutionMode.AES
        assert sched.controller.switches == 0


class TestDiscreteGE:
    def test_ge_with_ladder_serves_jobs(self):
        jobs = burst(10, window=0.4)
        h, _ = harness_with(jobs, discrete_levels=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0))
        result = h.run()
        assert result.quality > 0.8
        # Every executed speed sits on the ladder.
        for core in h.machine.cores:
            _, values = core.speed_timeline.as_arrays(h.sim.now)
            for v in values:
                assert v == 0.0 or v in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


class TestReporting:
    def test_describe_mentions_knobs(self):
        sched = GEScheduler(name="X", compensated=False, distribution="wf")
        h, _ = harness_with(burst(1), scheduler=sched)
        text = sched.describe()
        assert "no-comp" in text and "wf" in text

    def test_aes_fraction_none_before_bind(self):
        assert GEScheduler().aes_fraction() is None

    def test_core_loads_tracks_active_jobs(self):
        jobs = burst(6, window=1.0)
        sched = make_ge()
        h, _ = harness_with(jobs, scheduler=sched, m=2)
        h.run()
        # After the run everything settled: loads are zero.
        assert sched._core_loads() == [0.0, 0.0]


class _CacheClearingGE(GEScheduler):
    """GE with every cross-round cache wiped at the top of each round:
    the control experiment proving the caches are pure memoization."""

    def _run_round(self, tracer):
        from repro.core.cutting import WaterlineMemo

        m = len(self._plan_keys)
        self._plan_keys = [None] * m
        self._cap_memo = [None] * m
        self._waterline_memo = WaterlineMemo()
        self._hybrid.light._cache = None
        self._hybrid.heavy._cache = None
        super()._run_round(tracer)


class TestPlanCacheSoundness:
    """The plan cache, cap memo, waterline memo, and distribution
    decision caches must never change a simulated result: a GE whose
    caches are cleared every round produces the identical outcome."""

    def _run(self, scheduler, **overrides):
        from repro.config import SimulationConfig

        cfg = SimulationConfig(arrival_rate=150.0, horizon=5.0, seed=3).with_overrides(
            **overrides
        )
        return SimulationHarness(cfg, scheduler).run()

    @pytest.mark.parametrize("overrides", [
        {},                              # paper defaults (hybrid ES/WF)
        {"arrival_rate": 400.0},         # heavy load -> WF branch
        {"m": 4, "budget": 80.0},        # small machine, tight budget
    ], ids=["nominal", "heavy", "tight"])
    def test_cached_run_matches_cache_free_run(self, overrides):
        cached = self._run(GEScheduler(name="GE"), **overrides)
        cleared = self._run(_CacheClearingGE(name="GE"), **overrides)
        assert cached == cleared

    def test_plan_cache_engages_on_same_instant_triggers(self):
        """Plan reuse keys on the round instant, so it engages when a
        burst of same-instant arrivals fires several rounds at one time
        with most cores' queues and caps unchanged."""
        from repro.config import SimulationConfig
        from repro.obs import Tracer

        jobs = [Job(jid=i, arrival=0.2, deadline=1.4, demand=400.0) for i in range(8)]
        cfg = SimulationConfig(arrival_rate=100.0, horizon=2.0, m=2, seed=1)
        tracer = Tracer()
        sched = GEScheduler(name="GE")
        SimulationHarness(
            cfg, sched, workload=StaticWorkload(jobs), tracer=tracer
        ).run()
        metrics = tracer.to_trace().metrics
        assert metrics["planner.plan_cache_hits"]["value"] > 0

    def test_waterline_memo_engages_under_load(self):
        from repro.config import SimulationConfig

        cfg = SimulationConfig(arrival_rate=150.0, horizon=5.0, seed=3)
        sched = GEScheduler(name="GE")
        SimulationHarness(cfg, sched).run()
        assert sched._waterline_memo.hits > 0
        assert sched._waterline_memo.misses > 0
