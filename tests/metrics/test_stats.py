"""Tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.stats import mean_confidence_interval, summarize


def test_mean_ci_single_value():
    mean, lo, hi = mean_confidence_interval([5.0])
    assert mean == lo == hi == 5.0


def test_mean_ci_contains_mean():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    mean, lo, hi = mean_confidence_interval(values)
    assert mean == pytest.approx(3.0)
    assert lo < mean < hi


def test_mean_ci_width_shrinks_with_n():
    rng = np.random.default_rng(0)
    small = rng.normal(0, 1, 10)
    large = rng.normal(0, 1, 1000)
    _, lo_s, hi_s = mean_confidence_interval(small)
    _, lo_l, hi_l = mean_confidence_interval(large)
    assert (hi_l - lo_l) < (hi_s - lo_s)


def test_mean_ci_coverage_sanity():
    """~95% of CIs should contain the true mean."""
    rng = np.random.default_rng(42)
    hits = 0
    trials = 300
    for _ in range(trials):
        sample = rng.normal(10.0, 2.0, 30)
        _, lo, hi = mean_confidence_interval(sample, 0.95)
        hits += lo <= 10.0 <= hi
    assert hits / trials > 0.88


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_unsupported_confidence_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([1.0, 2.0], confidence=0.5)


def test_summarize_fields():
    s = summarize([2.0, 4.0, 6.0])
    assert s.mean == pytest.approx(4.0)
    assert s.n == 3
    assert s.std == pytest.approx(2.0)
    assert s.low < s.mean < s.high


def test_summarize_single():
    s = summarize([7.0])
    assert s.std == 0.0
    assert s.low == s.high == 7.0
