"""Tests for metric collection and run results."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector, RunResult
from repro.workload.job import Job, JobOutcome


def settled_job(jid, processed, demand, outcome):
    j = Job(jid=jid, arrival=0.0, deadline=1.0, demand=demand)
    if processed:
        j.add_progress(processed)
    j.settle(outcome)
    return j


def test_collector_counts_outcomes():
    c = MetricsCollector()
    c.record_settle(settled_job(1, 100.0, 100.0, JobOutcome.COMPLETED))
    c.record_settle(settled_job(2, 50.0, 100.0, JobOutcome.CUT))
    c.record_settle(settled_job(3, 0.0, 100.0, JobOutcome.DROPPED))
    assert c.jobs == 3
    assert c.outcomes == {"completed": 1, "cut": 1, "dropped": 1}
    assert c.processed_volume == pytest.approx(150.0)
    assert c.demand_volume == pytest.approx(300.0)
    assert c.volume_ratio == pytest.approx(0.5)


def test_collector_rejects_unsettled():
    c = MetricsCollector()
    with pytest.raises(ValueError):
        c.record_settle(Job(jid=1, arrival=0.0, deadline=1.0, demand=10.0))


def test_collector_reset():
    c = MetricsCollector()
    c.record_settle(settled_job(1, 10.0, 10.0, JobOutcome.COMPLETED))
    c.reset()
    assert c.jobs == 0
    assert c.volume_ratio == 1.0


def make_result(**overrides):
    base = dict(
        scheduler="GE",
        arrival_rate=150.0,
        quality=0.9,
        energy=1000.0,
        jobs=100,
        outcomes={"completed": 60, "cut": 30, "expired": 10},
        aes_fraction=0.7,
        mean_speed=1.5,
        speed_variance=0.1,
        utilization=0.8,
        completed_volume=20000.0,
        duration=10.0,
    )
    base.update(overrides)
    return RunResult(**base)


def test_run_result_derived_metrics():
    r = make_result()
    assert r.energy_per_job == pytest.approx(10.0)
    assert r.completion_ratio == pytest.approx(0.6)


def test_run_result_zero_jobs():
    r = make_result(jobs=0, outcomes={})
    assert r.energy_per_job == 0.0
    assert r.completion_ratio == 0.0


def test_run_result_row_formats():
    row = make_result().row()
    assert "GE" in row
    assert "0.9" in row
    assert "150" in row


def test_run_result_row_without_aes():
    row = make_result(aes_fraction=None).row()
    assert "n/a" in row
