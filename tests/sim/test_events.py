"""Unit tests for the event queue primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    while q:
        q.pop()._fire()
    assert fired == [1, 2, 3]


def test_same_time_orders_by_priority():
    q = EventQueue()
    fired = []
    q.push(1.0, lambda: fired.append("low"), priority=PRIORITY_LOW)
    q.push(1.0, lambda: fired.append("high"), priority=PRIORITY_HIGH)
    q.push(1.0, lambda: fired.append("normal"), priority=PRIORITY_NORMAL)
    while q:
        q.pop()._fire()
    assert fired == ["high", "normal", "low"]


def test_same_time_same_priority_is_fifo():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.push(1.0, lambda i=i: fired.append(i))
    while q:
        q.pop()._fire()
    assert fired == list(range(10))


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    assert len(q) == 1
    q.pop()
    assert len(q) == 0
    assert not q


def test_cancelled_events_are_skipped():
    q = EventQueue()
    fired = []
    e = q.push(1.0, lambda: fired.append("cancelled"))
    q.push(2.0, lambda: fired.append("kept"))
    e.cancel()
    while q:
        q.pop()._fire()
    assert fired == ["kept"]


def test_cancel_twice_returns_false():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    assert e.cancel() is True
    assert e.cancel() is False
    assert len(q) == 0


def test_cancel_after_fire_returns_false():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.pop()._fire()
    assert e.fired
    assert e.cancel() is False


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    e.cancel()
    assert q.peek_time() == 5.0


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.pop()


def test_event_state_flags():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    assert e.pending and not e.fired and not e.cancelled
    q.pop()._fire()
    assert e.fired and not e.pending


def test_discard_cancelled_compacts_heap():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(100)]
    for e in events[10:]:
        e.cancel()
    q.discard_cancelled()
    assert len(q._heap) == 10
    assert len(q) == 10
