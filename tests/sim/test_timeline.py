"""Unit tests for piecewise-constant timelines."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.timeline import StepTimeline, merge_mean_timeline


def test_integral_of_constant():
    tl = StepTimeline(initial_value=2.0)
    assert tl.integral(10.0) == pytest.approx(20.0)


def test_integral_of_steps():
    tl = StepTimeline(initial_value=0.0)
    tl.set_value(2.0, 3.0)  # [2, 5): 3
    tl.set_value(5.0, 1.0)  # [5, 10): 1
    assert tl.integral(10.0) == pytest.approx(0 * 2 + 3 * 3 + 1 * 5)


def test_integral_with_transform():
    tl = StepTimeline(initial_value=2.0)
    tl.set_value(1.0, 3.0)
    # ∫ v² = 4·1 + 9·1 on [0,2]
    assert tl.integral(2.0, transform=lambda v: v * v) == pytest.approx(13.0)


def test_time_average():
    tl = StepTimeline(initial_value=0.0)
    tl.set_value(5.0, 10.0)
    assert tl.time_average(10.0) == pytest.approx(5.0)


def test_time_variance_constant_is_zero():
    tl = StepTimeline(initial_value=4.0)
    assert tl.time_variance(7.0) == pytest.approx(0.0)


def test_time_variance_two_level():
    tl = StepTimeline(initial_value=0.0)
    tl.set_value(5.0, 2.0)
    # Half the time at 0, half at 2: mean 1, var 1.
    assert tl.time_variance(10.0) == pytest.approx(1.0)


def test_sample_right_continuous():
    tl = StepTimeline(initial_value=1.0)
    tl.set_value(2.0, 9.0)
    assert tl.sample(1.999) == 1.0
    assert tl.sample(2.0) == 9.0
    assert tl.sample(100.0) == 9.0


def test_same_time_overwrite():
    tl = StepTimeline(initial_value=0.0)
    tl.set_value(1.0, 5.0)
    tl.set_value(1.0, 7.0)
    assert tl.sample(1.0) == 7.0
    assert tl.integral(2.0) == pytest.approx(7.0)


def test_redundant_value_is_elided():
    tl = StepTimeline(initial_value=3.0)
    tl.set_value(1.0, 3.0)
    tl.set_value(2.0, 3.0)
    assert len(tl) == 1


def test_overwrite_collapses_to_previous_segment():
    tl = StepTimeline(initial_value=3.0)
    tl.set_value(1.0, 5.0)
    tl.set_value(1.0, 3.0)  # back to the original value
    assert len(tl) == 1


def test_chronological_enforcement():
    tl = StepTimeline()
    tl.set_value(5.0, 1.0)
    with pytest.raises(SimulationError):
        tl.set_value(4.0, 2.0)


def test_sample_before_start_raises():
    tl = StepTimeline(start_time=10.0)
    with pytest.raises(SimulationError):
        tl.sample(5.0)


def test_segments_clip_to_until():
    tl = StepTimeline(initial_value=1.0)
    tl.set_value(4.0, 2.0)
    segs = list(tl.segments(6.0))
    assert segs == [(0.0, 4.0, 1.0), (4.0, 6.0, 2.0)]


def test_merge_mean_timeline():
    a = StepTimeline(initial_value=0.0)
    b = StepTimeline(initial_value=2.0)
    a.set_value(5.0, 4.0)
    merged = merge_mean_timeline([a, b], until=10.0)
    assert merged.sample(0.0) == pytest.approx(1.0)
    assert merged.sample(6.0) == pytest.approx(3.0)
    assert merged.time_average(10.0) == pytest.approx((1.0 * 5 + 3.0 * 5) / 10)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_variance_nonnegative_and_consistent(steps):
    """Time variance is ≥ 0 and matches E[v²] − E[v]² on random steps."""
    tl = StepTimeline(initial_value=1.0)
    t = 0.0
    for gap, value in steps:
        t += gap
        tl.set_value(t, value)
    end = t + 1.0
    var = tl.time_variance(end)
    assert var >= 0.0
    mean = tl.time_average(end)
    second = tl.integral(end, transform=lambda v: v * v) / end
    assert var == pytest.approx(second - mean * mean, abs=1e-9)
