"""Unit tests for the simulator engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_advances_to_event_times(sim):
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.schedule(0.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.5, 1.5]
    assert sim.now == 1.5


def test_run_until_advances_clock_past_last_event(sim):
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_fires_events_at_boundary(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append("at"))
    sim.schedule(5.0000001, lambda: fired.append("after"))
    sim.run(until=5.0)
    assert fired == ["at"]
    assert sim.now == 5.0


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_at_absolute_time(sim):
    seen = []
    sim.at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_at_in_the_past_raises(sim):
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_stop_halts_run(sim):
    fired = []

    def stopper():
        fired.append("stopper")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: fired.append("late"))
    sim.run()
    assert fired == ["stopper"]
    assert sim.pending_events == 1


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_cancelled_event_not_fired(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_zero_delay_fires_in_current_instant(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.0


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    seen = []
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [101.0]


def test_determinism_same_program_same_order():
    def program():
        sim = Simulator()
        trace = []
        for i in range(50):
            sim.schedule((i * 7919) % 13 * 0.1, lambda i=i: trace.append(i))
        sim.run()
        return trace

    assert program() == program()


def test_run_until_before_now_raises(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)
