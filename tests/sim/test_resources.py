"""Tests for the Resource and Store DES primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Timeout
from repro.sim.resources import Resource, Store


class TestResource:
    def test_serializes_access(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(name, hold):
            yield res.request()
            log.append((name, sim.now))
            yield Timeout(hold)
            res.release()

        sim.process(user("a", 1.0))
        sim.process(user("b", 1.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert log == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_capacity_two_runs_pairs(self, sim):
        res = Resource(sim, capacity=2)
        log = []

        def user(name):
            yield res.request()
            log.append((name, sim.now))
            yield Timeout(1.0)
            res.release()

        for name in "abcd":
            sim.process(user(name))
        sim.run()
        times = dict(log)
        assert times["a"] == times["b"] == 0.0
        assert times["c"] == times["d"] == 1.0

    def test_fifo_ordering(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(name, start):
            yield Timeout(start)
            yield res.request()
            order.append(name)
            yield Timeout(5.0)
            res.release()

        sim.process(user("late", 0.2))
        sim.process(user("early", 0.1))
        sim.process(user("first", 0.0))
        sim.run()
        assert order == ["first", "early", "late"]

    def test_counters(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield Timeout(2.0)
            res.release()

        def waiter():
            yield Timeout(0.5)
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.schedule(1.0, lambda: checks.append((res.in_use, res.queued)))
        checks = []
        sim.run()
        assert checks == [(1, 1)]

    def test_release_without_hold_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        store.put("x")
        sim.process(consumer())
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        sim.process(consumer())
        sim.schedule(3.0, lambda: store.put("late"))
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.try_get() == 1
        assert store.try_get() == 2
        assert store.try_get() is None

    def test_bounded_store_rejects_overflow(self, sim):
        store = Store(sim, capacity=1)
        store.put("a")
        with pytest.raises(SimulationError):
            store.put("b")

    def test_put_bypasses_buffer_for_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.process(consumer())
        sim.schedule(1.0, lambda: store.put("direct"))
        sim.run()
        assert got == ["direct"]
        assert len(store) == 0

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


def test_pipeline_of_resource_and_store(sim):
    """An admission-control front-end: arrivals queue in a Store, two
    workers pull from it under a Resource."""
    store = Store(sim)
    res = Resource(sim, capacity=2)
    done = []

    def producer():
        for i in range(6):
            store.put(i)
            yield Timeout(0.1)

    def worker(name):
        for _ in range(3):
            item = yield store.get()
            yield res.request()
            yield Timeout(0.5)
            res.release()
            done.append((name, item))

    sim.process(producer())
    sim.process(worker("w1"))
    sim.process(worker("w2"))
    sim.run()
    assert sorted(item for _, item in done) == list(range(6))
