"""Unit tests for generator-based simulation processes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Interrupt, Signal, Timeout


def test_timeout_advances_clock(sim):
    def worker():
        yield Timeout(2.5)
        return "done"

    p = sim.process(worker())
    sim.run()
    assert p.done
    assert p.value == "done"
    assert sim.now == 2.5


def test_sequential_timeouts(sim):
    times = []

    def worker():
        for _ in range(3):
            yield Timeout(1.0)
            times.append(sim.now)

    sim.process(worker())
    sim.run()
    assert times == [1.0, 2.0, 3.0]


def test_timeout_delivers_value(sim):
    got = []

    def worker():
        value = yield Timeout(1.0, value="payload")
        got.append(value)

    sim.process(worker())
    sim.run()
    assert got == ["payload"]


def test_wait_on_other_process(sim):
    def child():
        yield Timeout(3.0)
        return 42

    def parent():
        result = yield sim.process(child())
        return result * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 84
    assert sim.now == 3.0


def test_wait_on_finished_process_resumes_immediately(sim):
    def child():
        yield Timeout(1.0)
        return "early"

    child_proc = sim.process(child())

    def parent():
        yield Timeout(5.0)
        result = yield child_proc
        return result

    p = sim.process(parent())
    sim.run()
    assert p.value == "early"
    assert sim.now == 5.0


def test_signal_wakes_waiters(sim):
    signal = Signal(sim)
    woken = []

    def waiter(name):
        payload = yield signal
        woken.append((name, payload, sim.now))

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.process(_trigger_later(sim, signal, 2.0, "go"))
    sim.run()
    assert sorted(woken) == [("a", "go", 2.0), ("b", "go", 2.0)]


def _trigger_later(sim, signal, delay, payload):
    yield Timeout(delay)
    signal.trigger(payload)


def test_triggered_signal_resumes_new_waiter(sim):
    signal = Signal(sim)
    signal.trigger("already")

    def waiter():
        payload = yield signal
        return payload

    p = sim.process(waiter())
    sim.run()
    assert p.value == "already"


def test_signal_double_trigger_raises(sim):
    signal = Signal(sim)
    signal.trigger()
    with pytest.raises(SimulationError):
        signal.trigger()


def test_interrupt_raises_inside_process(sim):
    caught = []

    def worker():
        try:
            yield Timeout(100.0)
        except Interrupt as exc:
            caught.append(exc.cause)
            yield Timeout(1.0)
        return "recovered"

    p = sim.process(worker())
    sim.schedule(2.0, lambda: p.interrupt("reason"))
    sim.run()
    assert caught == ["reason"]
    assert p.value == "recovered"
    assert sim.now == 3.0


def test_uncaught_interrupt_terminates_process(sim):
    def worker():
        yield Timeout(100.0)

    p = sim.process(worker())
    sim.schedule(1.0, lambda: p.interrupt())
    sim.run()
    assert p.done
    assert isinstance(p.error, Interrupt)


def test_interrupt_after_done_is_noop(sim):
    def worker():
        yield Timeout(1.0)
        return "ok"

    p = sim.process(worker())
    sim.run()
    p.interrupt()
    assert p.value == "ok"
    assert p.error is None


def test_non_generator_raises(sim):
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_yield_unsupported_value_raises(sim):
    def worker():
        yield 12345

    sim.process(worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_return_none_by_default(sim):
    def worker():
        yield Timeout(1.0)

    p = sim.process(worker())
    sim.run()
    assert p.done and p.value is None


def test_negative_timeout_raises(sim):
    with pytest.raises(SimulationError):
        Timeout(-1.0)
