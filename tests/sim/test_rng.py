"""Unit tests for named random streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(seed=42).fresh("arrivals")
    b = RandomStreams(seed=42).fresh("arrivals")
    assert np.array_equal(a.random(100), b.random(100))


def test_different_names_are_independent():
    streams = RandomStreams(seed=42)
    a = streams.fresh("arrivals").random(100)
    b = streams.fresh("demands").random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).fresh("x").random(50)
    b = RandomStreams(seed=2).fresh("x").random(50)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    streams = RandomStreams(seed=0)
    s1 = streams.stream("w")
    first = s1.random(10)
    s2 = streams.stream("w")
    assert s1 is s2
    second = s2.random(10)
    assert not np.array_equal(first, second)


def test_creation_order_does_not_matter():
    s1 = RandomStreams(seed=9)
    s1.stream("a")
    a_then_b = s1.fresh("b").random(20)
    s2 = RandomStreams(seed=9)
    s2.stream("b")
    b_direct = s2.fresh("b").random(20)
    assert np.array_equal(a_then_b, b_direct)


def test_child_factories_are_independent():
    parent = RandomStreams(seed=5)
    c0 = parent.child(0).fresh("x").random(20)
    c1 = parent.child(1).fresh("x").random(20)
    assert not np.array_equal(c0, c1)


def test_child_is_deterministic():
    a = RandomStreams(seed=5).child(3).fresh("x").random(20)
    b = RandomStreams(seed=5).child(3).fresh("x").random(20)
    assert np.array_equal(a, b)
