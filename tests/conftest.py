"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.power.models import PowerModel
from repro.quality.functions import ExponentialQuality
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t=0."""
    return Simulator()


@pytest.fixture
def model() -> PowerModel:
    """The paper's power model: P = 5 s², 1000 units/GHz·s."""
    return PowerModel()


@pytest.fixture
def quality() -> ExponentialQuality:
    """The paper's quality function: c=0.003, x_max=1000."""
    return ExponentialQuality(c=0.003, x_max=1000.0)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A small but realistic configuration for integration tests."""
    return SimulationConfig(arrival_rate=120.0, horizon=6.0, seed=7)
