"""Injection mechanics: determinism, null-injector invariance, physics."""

from __future__ import annotations

import pytest

from repro.chaos import DisturbanceSchedule, arrival_burst, budget_dip, core_fail, misestimate
from repro.check.sanitizer import SanitizingTracer
from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.obs import Tracer
from repro.server.harness import SimulationHarness


def _cfg(**overrides):
    defaults = dict(arrival_rate=120.0, horizon=6.0, seed=7)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _run(config, tracer=None):
    return SimulationHarness(config, make_ge(), tracer=tracer).run()


DIP = DisturbanceSchedule.of(budget_dip(2.0, 0.5, 2.0))
FAIL = DisturbanceSchedule.of(core_fail(2.0, 0, duration=2.0))


class TestDeterminism:
    def test_disturbed_run_bit_reproducible(self):
        sched = DisturbanceSchedule.of(
            core_fail(1.5, 0, duration=2.0),
            budget_dip(2.0, 0.6, 1.5),
            arrival_burst(2.5, 2.0, 1.0),
        )
        a = _run(_cfg(disturbances=sched))
        b = _run(_cfg(disturbances=sched))
        assert a == b

    def test_armed_empty_schedule_matches_plain_run(self):
        # The NULL-injector invariant: arming chaos without scheduling
        # any disturbance must not perturb a single event.
        plain = _run(_cfg())
        armed = _run(_cfg(disturbances=DisturbanceSchedule.of()))
        assert plain == armed

    def test_traced_disturbed_run_bit_identical_to_untraced(self):
        cfg = _cfg(disturbances=FAIL)
        untraced = _run(cfg)
        traced = _run(cfg, tracer=Tracer())
        assert untraced == traced

    def test_events_processed_identical_traced_vs_untraced(self):
        # Window markers for burst/misestimate are trace-only emissions
        # riding unconditionally-scheduled events, so the event count
        # cannot depend on whether a tracer is attached.
        sched = DisturbanceSchedule.of(
            arrival_burst(2.0, 2.0, 1.0), misestimate(3.0, 1.5, 1.0)
        )
        h1 = SimulationHarness(_cfg(disturbances=sched), make_ge())
        h1.run()
        h2 = SimulationHarness(_cfg(disturbances=sched), make_ge(), tracer=Tracer())
        h2.run()
        assert h1.sim.events_processed == h2.sim.events_processed


class TestCoreFailure:
    def test_core_fail_shrinks_then_recovers(self):
        cfg = _cfg(disturbances=FAIL)
        harness = SimulationHarness(cfg, make_ge())
        result = harness.run()
        # All jobs settle even though a core died mid-run.
        assert result.jobs > 0
        assert not harness.machine.cores[0].failed
        assert harness.machine.alive_count == cfg.m

    def test_permanent_fail_stays_dead(self):
        cfg = _cfg(disturbances=DisturbanceSchedule.of(core_fail(2.0, 1)))
        harness = SimulationHarness(cfg, make_ge())
        harness.run()
        assert harness.machine.cores[1].failed
        assert harness.machine.alive_count == cfg.m - 1

    def test_kill_policy_differs_from_requeue(self):
        kill = DisturbanceSchedule.of(core_fail(2.0, 0, duration=2.0, policy="kill"))
        requeue = DisturbanceSchedule.of(
            core_fail(2.0, 0, duration=2.0, policy="requeue")
        )
        r_kill = _run(_cfg(disturbances=kill))
        r_requeue = _run(_cfg(disturbances=requeue))
        # Same jobs settle either way; the dispositions differ.
        assert r_kill.jobs == r_requeue.jobs
        assert r_kill != r_requeue

    def test_all_cores_failing_parks_queue(self):
        # Every core dead: arrivals park in the queue until recovery,
        # and the run still settles every job (deadline expiries).
        cfg = SimulationConfig(
            arrival_rate=60.0, horizon=4.0, seed=3, m=2,
            disturbances=DisturbanceSchedule.of(
                core_fail(1.0, 0, duration=1.5), core_fail(1.0, 1, duration=1.5)
            ),
        )
        result = _run(cfg)
        assert result.jobs > 0


class TestBudgetDip:
    def test_budget_restored_after_dip(self):
        cfg = _cfg(disturbances=DIP)
        harness = SimulationHarness(cfg, make_ge())
        harness.run()
        assert harness.machine.budget == pytest.approx(cfg.budget)

    def test_dip_costs_quality_or_energy(self):
        disturbed = _run(_cfg(disturbances=DIP))
        twin = _run(_cfg())
        # Halving H for a third of the run must show up somewhere.
        assert disturbed != twin
        assert disturbed.energy < twin.energy or disturbed.quality < twin.quality

    def test_sanitizer_clean_across_dip(self):
        # The power-budget invariant follows the *current* H: a dip to
        # 0.5·H re-arms the sanitizer bound, and the GE redistribution
        # keeps every quantum inside it.
        cfg = _cfg(disturbances=DIP)
        scheduler = make_ge()
        tracer = SanitizingTracer.for_run(cfg, scheduler)
        result = SimulationHarness(cfg, scheduler, tracer=tracer).run()
        assert result == _run(cfg)
        assert tracer.checks_run > 0
        # The dip and its restore both updated the tracked budget.
        assert tracer.budget == pytest.approx(cfg.budget)

    def test_overlapping_dips_compose(self):
        sched = DisturbanceSchedule.of(
            budget_dip(1.0, 0.8, 3.0), budget_dip(2.0, 0.5, 1.0)
        )
        cfg = _cfg(disturbances=sched)
        scheduler = make_ge()
        tracer = SanitizingTracer.for_run(cfg, scheduler)
        SimulationHarness(cfg, scheduler, tracer=tracer).run()
        assert tracer.budget == pytest.approx(cfg.budget)


class TestWorkloadDisturbances:
    def test_burst_adds_jobs(self):
        burst = _run(
            _cfg(disturbances=DisturbanceSchedule.of(arrival_burst(2.0, 3.0, 2.0)))
        )
        twin = _run(_cfg())
        assert burst.jobs > twin.jobs

    def test_burst_preserves_base_draws(self):
        # Superposition: the base arrivals are untouched, only extra
        # jobs appear inside the window.
        base = _cfg().workload().materialize()
        sched = DisturbanceSchedule.of(arrival_burst(2.0, 3.0, 2.0))
        merged = _cfg(disturbances=sched).workload().materialize()
        base_times = {j.arrival for j in base}
        merged_times = {j.arrival for j in merged}
        assert base_times <= merged_times
        extras = sorted(merged_times - base_times)
        assert extras
        assert all(2.0 <= t < 4.0 for t in extras)

    def test_misestimate_inflates_demands_in_window(self):
        sched = DisturbanceSchedule.of(misestimate(2.0, 1.5, 2.0))
        base = _cfg().workload().materialize()
        inflated = _cfg(disturbances=sched).workload().materialize()
        assert len(base) == len(inflated)
        for b, i in zip(base, inflated):
            assert b.arrival == i.arrival
            if 2.0 <= b.arrival < 4.0:
                assert i.demand >= b.demand
            else:
                assert i.demand == b.demand

    def test_misestimate_caps_at_support_max(self):
        cfg = _cfg(disturbances=DisturbanceSchedule.of(misestimate(1.0, 10.0, 4.0)))
        x_max = cfg.demand_distribution().x_max
        for job in cfg.workload().materialize():
            assert job.demand <= x_max + 1e-9
