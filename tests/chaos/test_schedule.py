"""Disturbance schedules: validation and fingerprint content-addressing."""

from __future__ import annotations

import pytest

from repro.chaos import (
    Disturbance,
    DisturbanceSchedule,
    arrival_burst,
    budget_dip,
    core_fail,
    misestimate,
)
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.obs.runs import run_id_for


class TestDisturbanceValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown disturbance kind"):
            Disturbance(kind="cosmic_ray", time=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            core_fail(-1.0, 0)

    def test_core_fail_needs_core(self):
        with pytest.raises(ConfigurationError, match="core index"):
            Disturbance(kind="core_fail", time=1.0)

    def test_core_fail_policy_validated(self):
        with pytest.raises(ConfigurationError, match="policy"):
            core_fail(1.0, 0, policy="explode")

    def test_budget_dip_factor_bounds(self):
        with pytest.raises(ConfigurationError, match=r"\(0, 1\)"):
            budget_dip(1.0, 1.5, 2.0)
        with pytest.raises(ConfigurationError, match=r"\(0, 1\)"):
            budget_dip(1.0, 0.0, 2.0)

    def test_burst_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="> 1"):
            arrival_burst(1.0, 0.9, 2.0)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            Disturbance(kind="budget_dip", time=1.0, factor=0.5)
        with pytest.raises(ConfigurationError, match="duration"):
            Disturbance(kind="misestimate", time=1.0, factor=1.5)

    def test_end_and_describe(self):
        d = budget_dip(2.0, 0.5, 3.0)
        assert d.end == 5.0
        assert "budget_dip" in d.describe()
        permanent = core_fail(1.0, 3, policy="kill")
        assert permanent.end is None
        assert "core 3" in permanent.describe()


class TestScheduleShape:
    def test_of_and_iteration(self):
        sched = DisturbanceSchedule.of(core_fail(1.0, 0), budget_dip(2.0, 0.5, 1.0))
        assert len(sched) == 2
        assert [d.kind for d in sched] == ["core_fail", "budget_dip"]
        assert not sched.is_empty
        assert DisturbanceSchedule.of().is_empty

    def test_kind_windows(self):
        sched = DisturbanceSchedule.of(
            arrival_burst(1.0, 2.0, 3.0), misestimate(2.0, 1.5, 4.0)
        )
        assert sched.burst_windows() == ((1.0, 3.0, 2.0),)
        assert sched.misestimate_windows() == ((2.0, 4.0, 1.5),)

    def test_last_effect_end(self):
        sched = DisturbanceSchedule.of(
            budget_dip(1.0, 0.5, 2.0), core_fail(5.0, 0)
        )
        assert sched.last_effect_end() == 5.0
        assert DisturbanceSchedule.of().last_effect_end() is None

    def test_non_disturbance_entries_rejected(self):
        with pytest.raises(ConfigurationError, match="must be Disturbance"):
            DisturbanceSchedule(disturbances=("not a disturbance",))

    def test_validate_for_core_index(self):
        with pytest.raises(ConfigurationError, match="m=2"):
            SimulationConfig(
                m=2, horizon=5.0,
                disturbances=DisturbanceSchedule.of(core_fail(1.0, 2)),
            )

    def test_validate_for_horizon(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            SimulationConfig(
                horizon=5.0,
                disturbances=DisturbanceSchedule.of(core_fail(5.0, 0)),
            )


class TestFingerprint:
    """Schedules are content-addressed; absence is the pre-chaos address."""

    def test_none_schedule_preserves_prechaos_fingerprint(self):
        # The `disturbances` key is dropped from the payload when None,
        # so every fingerprint minted before repro.chaos existed stays
        # valid (bench baselines, stored runs).
        import hashlib
        import json
        from dataclasses import asdict

        cfg = SimulationConfig(horizon=5.0, seed=3)
        assert cfg.disturbances is None
        fields = asdict(cfg)
        assert "disturbances" in fields
        del fields["disturbances"]
        payload = json.dumps(fields, sort_keys=True, default=repr)
        expected = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
        assert cfg.fingerprint() == expected

    def test_schedule_changes_fingerprint(self):
        plain = SimulationConfig(horizon=5.0, seed=3)
        disturbed = plain.with_overrides(
            disturbances=DisturbanceSchedule.of(budget_dip(1.0, 0.5, 1.0))
        )
        assert plain.fingerprint() != disturbed.fingerprint()

    def test_armed_empty_schedule_changes_fingerprint(self):
        # Armed-but-empty is still an explicit choice; only None is the
        # pre-chaos address.
        plain = SimulationConfig(horizon=5.0, seed=3)
        armed = plain.with_overrides(disturbances=DisturbanceSchedule.of())
        assert plain.fingerprint() != armed.fingerprint()

    def test_distinct_schedules_distinct_run_ids(self):
        # Regression (runs diff / fleet rollups): two runs differing
        # only in their schedule must land under different run ids.
        base = SimulationConfig(horizon=5.0, seed=3)
        a = base.with_overrides(
            disturbances=DisturbanceSchedule.of(budget_dip(1.0, 0.5, 1.0))
        )
        b = base.with_overrides(
            disturbances=DisturbanceSchedule.of(budget_dip(1.0, 0.6, 1.0))
        )
        ids = {
            run_id_for({"config_fingerprint": c.fingerprint(), "seed": c.seed,
                        "scheduler": "GE"})
            for c in (base, a, b)
        }
        assert len(ids) == 3
