"""Degradation analysis, the CI gate, catalog and telemetry plumbing."""

from __future__ import annotations

import pytest

from repro.chaos import DisturbanceSchedule, budget_dip
from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.experiments.chaos import (
    CHAOS_SCHEMA,
    analyze_degradation,
    evaluate_gate,
    run_chaos_scenario,
)
from repro.experiments.registry import CHAOS_SCENARIOS, chaos_config, get_chaos_scenario
from repro.obs import StreamingTracer, Tracer, fold_records
from repro.obs.report import render_report
from repro.server.harness import SimulationHarness


def _summary(quality_rows, energy, quality=0.9):
    return {
        "telemetry": {"windows": {"quality": {"rows": quality_rows}}},
        "result": {"energy": energy, "quality": quality},
    }


def _row(start, end, mean):
    return {"start": start, "end": end, "mean": mean, "min": mean, "max": mean}


DIP_CFG = SimulationConfig(
    horizon=10.0, seed=1,
    disturbances=DisturbanceSchedule.of(budget_dip(2.0, 0.5, 2.0)),
)


class TestAnalyzeDegradation:
    def test_synthetic_recovery(self):
        disturbed = _summary(
            [_row(0, 2, 0.95), _row(2, 4, 0.80), _row(4, 6, 0.85),
             _row(6, 8, 0.95), _row(8, 10, 0.95)],
            energy=1100.0, quality=0.88,
        )
        twin = _summary([_row(0, 10, 0.95)], energy=1000.0, quality=0.95)
        deg = analyze_degradation(disturbed, twin, config=DIP_CFG)
        assert deg["floor"]["disturbed_violation_s"] == pytest.approx(4.0)
        assert deg["floor"]["twin_violation_s"] == 0.0
        assert deg["floor"]["degradation_s"] == pytest.approx(4.0)
        (rec,) = deg["recoveries"]
        assert rec["recovered_at"] == pytest.approx(6.0)
        assert rec["recovery_s"] == pytest.approx(4.0)
        assert deg["energy"]["overhead_j"] == pytest.approx(100.0)
        # Post-recovery tail starts at the dip's end (t=4).
        assert deg["post"]["after_s"] == pytest.approx(4.0)
        assert deg["post"]["compliance"] == pytest.approx(2 / 3)

    def test_no_degradation_means_zero_recovery(self):
        healthy = _summary([_row(0, 10, 0.95)], energy=1000.0)
        deg = analyze_degradation(healthy, healthy, config=DIP_CFG)
        (rec,) = deg["recoveries"]
        assert rec["recovery_s"] == 0.0
        assert deg["floor"]["degradation_s"] == 0.0

    def test_never_recovered_is_none(self):
        stuck = _summary([_row(0, 2, 0.95), _row(2, 10, 0.5)], energy=1000.0)
        twin = _summary([_row(0, 10, 0.95)], energy=900.0)
        deg = analyze_degradation(stuck, twin, config=DIP_CFG)
        (rec,) = deg["recoveries"]
        assert rec["recovery_s"] is None

    def test_requires_disturbed_config(self):
        with pytest.raises(ValueError, match="disturbed configuration"):
            analyze_degradation({}, {}, config=SimulationConfig(horizon=5.0))


class TestGate:
    DEG = {
        "recoveries": [
            {"detail": "dip", "recovery_s": 3.0},
            {"detail": "fail", "recovery_s": None},
        ],
        "post": {"compliance": 0.6, "compliant": 6, "windows": 10},
    }

    def test_gate_disarmed_passes(self):
        assert evaluate_gate(self.DEG) == []

    def test_recovery_bound(self):
        failures = evaluate_gate(self.DEG, max_recovery_s=2.0)
        assert len(failures) == 2  # too slow + never recovered
        assert any("never" in f for f in failures)

    def test_compliance_floor(self):
        assert evaluate_gate(self.DEG, min_post_compliance=0.5) == []
        failures = evaluate_gate(self.DEG, min_post_compliance=0.7)
        assert len(failures) == 1

    def test_no_tail_windows_fails_compliance_gate(self):
        deg = {"recoveries": [], "post": {"compliance": None}}
        assert evaluate_gate(deg, min_post_compliance=0.5)


class TestCatalog:
    def test_catalog_is_large_enough(self):
        assert len(CHAOS_SCENARIOS) >= 6

    @pytest.mark.parametrize("name", sorted(CHAOS_SCENARIOS))
    def test_every_scenario_builds_a_valid_config(self, name):
        cfg = chaos_config(get_chaos_scenario(name), scale=0.02, seed=1)
        assert cfg.disturbances is not None
        assert len(cfg.disturbances) >= 1
        # Twin shares everything but the schedule.
        twin = cfg.with_overrides(disturbances=None)
        assert twin.fingerprint() != cfg.fingerprint()

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            get_chaos_scenario("meteor_strike")


class TestRunChaosScenario:
    def test_end_to_end_summary(self):
        summary = run_chaos_scenario("budget_dip", scale=0.01, seed=1)
        assert summary["chaos_schema"] == CHAOS_SCHEMA
        assert summary["scenario"]["name"] == "budget_dip"
        assert summary["scenario"]["twin_fingerprint"] != summary["meta"][
            "config_fingerprint"
        ]
        telemetry = summary["telemetry"]
        kinds = {e["disturbance"] for e in telemetry["chaos_events"]}
        assert "budget_dip" in kinds and "budget_restore" in kinds
        deg = summary["degradation"]
        assert deg["q_floor"] == pytest.approx(0.9)
        assert len(deg["recoveries"]) == 1
        # The annotated summary renders as HTML with the chaos panel.
        html = render_report(summary)
        assert "Disturbances (repro.chaos)" in html
        assert "budget_dip" in html


class TestTelemetryPlumbing:
    def test_stream_fold_matches_online(self):
        # Online streaming aggregation and the offline fold of the same
        # run's buffered records agree on the chaos stream too.
        cfg = SimulationConfig(
            arrival_rate=120.0, horizon=6.0, seed=7,
            disturbances=DisturbanceSchedule.of(budget_dip(2.0, 0.5, 2.0)),
        )
        stream = StreamingTracer()
        SimulationHarness(cfg, make_ge(), tracer=stream).run()
        online = stream.aggregator.snapshot()

        full = Tracer()
        SimulationHarness(cfg, make_ge(), tracer=full).run()
        offline = fold_records(full.to_trace()).snapshot()

        assert online["chaos_events"] == offline["chaos_events"]
        assert online["chaos_events"]
        assert online["chaos_dropped"] == 0
        assert online == offline
