"""The ``repro chaos`` CLI: list/run/report and the exit-code gate."""

from __future__ import annotations

import json

from repro.cli import main


def test_chaos_list(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    assert "budget_dip" in out
    assert "core_fail_requeue" in out


def test_chaos_run_unknown_scenario(capsys):
    assert main(["chaos", "run", "meteor_strike"]) == 2
    assert "unknown chaos scenario" in capsys.readouterr().out


def test_chaos_run_with_artifacts(tmp_path, capsys):
    json_path = tmp_path / "chaos.json"
    html_path = tmp_path / "chaos.html"
    code = main([
        "chaos", "run", "budget_dip", "--scale", "0.01",
        "--json", str(json_path), "--report", str(html_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario budget_dip" in out
    assert "recovery:" in out
    summary = json.loads(json_path.read_text())
    assert summary["chaos_schema"] == "repro.chaos/1"
    assert summary["degradation"]["recoveries"]
    html = html_path.read_text()
    assert "Disturbances (repro.chaos)" in html


def test_chaos_gate_failure_exit_code(capsys):
    # An impossibly tight recovery bound must flip the exit code.
    code = main([
        "chaos", "run", "perfect_storm", "--scale", "0.01",
        "--max-recovery-s", "0.0001",
    ])
    assert code == 1
    assert "chaos gate FAILED" in capsys.readouterr().out


def test_chaos_report_from_json(tmp_path, capsys):
    json_path = tmp_path / "chaos.json"
    assert main([
        "chaos", "run", "misestimate", "--scale", "0.01", "--json", str(json_path),
    ]) == 0
    out_path = tmp_path / "again.html"
    assert main(["chaos", "report", str(json_path), "--out", str(out_path)]) == 0
    assert "wrote chaos report" in capsys.readouterr().out
    assert "Disturbances" in out_path.read_text()


def test_chaos_report_missing_file(tmp_path, capsys):
    assert main(["chaos", "report", str(tmp_path / "nope.json")]) == 2
    assert "chaos report" in capsys.readouterr().out
