"""Unit and property tests for quality functions (paper Eq. 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quality.functions import (
    ExponentialQuality,
    LinearQuality,
    LogQuality,
    PowerQuality,
)

ALL_FUNCTIONS = [
    ExponentialQuality(c=0.003, x_max=1000.0),
    ExponentialQuality(c=0.009, x_max=1000.0),
    LinearQuality(x_max=1000.0),
    LogQuality(k=0.01, x_max=1000.0),
    PowerQuality(gamma=0.5, x_max=1000.0),
]


@pytest.mark.parametrize("f", ALL_FUNCTIONS, ids=lambda f: repr(f))
class TestContract:
    def test_zero_maps_to_zero(self, f):
        assert f(0.0) == pytest.approx(0.0)

    def test_xmax_maps_to_one(self, f):
        assert f(f.x_max) == pytest.approx(1.0)

    def test_clamps_above_xmax(self, f):
        assert f(f.x_max * 3) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self, f):
        xs = np.linspace(0, f.x_max, 200)
        ys = f(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    def test_concave_midpoint(self, f):
        xs = np.linspace(0, f.x_max, 50)
        for a, b in zip(xs[:-1], xs[1:]):
            assert f((a + b) / 2) >= 0.5 * (f(a) + f(b)) - 1e-12

    def test_derivative_nonincreasing(self, f):
        xs = np.linspace(1.0, f.x_max - 1.0, 100)
        ds = f.derivative(xs)
        assert np.all(np.diff(ds) <= 1e-12)

    def test_derivative_zero_beyond_xmax(self, f):
        assert f.derivative(f.x_max + 1) == 0.0

    def test_inverse_round_trip(self, f):
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            x = f.inverse(q)
            assert f(x) == pytest.approx(q, abs=1e-6)

    def test_negative_input_rejected(self, f):
        with pytest.raises(ValueError):
            f(-1.0)
        with pytest.raises(ValueError):
            f.derivative(-1.0)

    def test_vectorized_matches_scalar(self, f):
        xs = np.array([0.0, 10.0, 500.0, 1000.0])
        vec = f(xs)
        assert vec == pytest.approx([f(float(x)) for x in xs])


@pytest.mark.parametrize(
    "f",
    [f for f in ALL_FUNCTIONS if hasattr(f, "inverse_exact")],
    ids=lambda f: repr(f),
)
@pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.75, 0.9, 0.999])
def test_binary_search_matches_closed_form(f, q):
    """The paper's binary-search inverse agrees with the algebra."""
    assert f.inverse(q) == pytest.approx(f.inverse_exact(q), abs=1e-5)


def test_exponential_matches_formula():
    f = ExponentialQuality(c=0.003, x_max=1000.0)
    x = 250.0
    expected = (1 - math.exp(-0.003 * x)) / (1 - math.exp(-0.003 * 1000.0))
    assert f(x) == pytest.approx(expected)


def test_larger_c_is_more_concave():
    """Fig. 9b: larger c yields higher quality for the same volume."""
    small = ExponentialQuality(c=0.0005, x_max=1000.0)
    large = ExponentialQuality(c=0.009, x_max=1000.0)
    for x in (50.0, 200.0, 500.0):
        assert large(x) > small(x)


def test_invalid_parameters_raise():
    with pytest.raises(ConfigurationError):
        ExponentialQuality(c=-1.0)
    with pytest.raises(ConfigurationError):
        ExponentialQuality(c=0.003, x_max=0.0)
    with pytest.raises(ConfigurationError):
        LogQuality(k=0.0)
    with pytest.raises(ConfigurationError):
        PowerQuality(gamma=1.5)


def test_inverse_rejects_out_of_range():
    f = ExponentialQuality()
    with pytest.raises(ValueError):
        f.inverse(1.5)
    with pytest.raises(ValueError):
        f.inverse(-0.1)


@given(
    c=st.floats(min_value=1e-4, max_value=0.02),
    q=st.floats(min_value=0.0, max_value=1.0),
)
def test_inverse_property_exponential(c, q):
    """inverse(q) always lands within tolerance of q, any concavity."""
    f = ExponentialQuality(c=c, x_max=1000.0)
    x = f.inverse(q)
    assert 0.0 <= x <= f.x_max
    assert f(x) == pytest.approx(q, abs=1e-5)


@given(x=st.floats(min_value=0.0, max_value=1000.0))
def test_head_beats_tail_property(x):
    """Diminishing returns: the head of a job is worth more than the tail.

    f(x) ≥ f(1000) − f(1000 − x): processing the first x units gains at
    least as much quality as the last x units.
    """
    f = ExponentialQuality(c=0.003, x_max=1000.0)
    assert f(x) >= f(1000.0) - f(1000.0 - x) - 1e-12
