"""Tests for aggregate quality Q(J) = Σf(c)/Σf(p)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.quality.aggregate import (
    aggregate_quality,
    projected_quality_after_cut,
    quality_ratio,
)
from repro.quality.functions import ExponentialQuality

F = ExponentialQuality(c=0.003, x_max=1000.0)


def test_full_processing_is_one():
    demands = [100.0, 500.0, 900.0]
    assert aggregate_quality(F, demands, demands) == pytest.approx(1.0)


def test_no_processing_is_zero():
    demands = [100.0, 500.0]
    assert aggregate_quality(F, [0.0, 0.0], demands) == pytest.approx(0.0)


def test_empty_set_is_one():
    assert aggregate_quality(F, [], []) == 1.0
    assert quality_ratio(0.0, 0.0) == 1.0


def test_partial_processing_matches_formula():
    processed = np.array([50.0, 400.0])
    demands = np.array([100.0, 800.0])
    expected = (F(50.0) + F(400.0)) / (F(100.0) + F(800.0))
    assert aggregate_quality(F, processed, demands) == pytest.approx(expected)


def test_processed_above_demand_rejected():
    with pytest.raises(ValueError):
        aggregate_quality(F, [200.0], [100.0])


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        aggregate_quality(F, [1.0, 2.0], [1.0])


def test_projected_quality_with_history():
    # History: one fully-processed job of 500 units.
    base_a = float(F(500.0))
    base_p = float(F(500.0))
    q = projected_quality_after_cut(F, [100.0], [200.0], base_a, base_p)
    expected = (base_a + F(100.0)) / (base_p + F(200.0))
    assert q == pytest.approx(expected)


def test_projected_quality_empty_batch_returns_history():
    q = projected_quality_after_cut(F, [], [], 3.0, 4.0)
    assert q == pytest.approx(0.75)


@given(
    st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=30),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_scaling_processed_lowers_quality(demands, frac):
    """Processing a fraction of every job yields Q in [f-bound, 1]."""
    demands_arr = np.asarray(demands)
    q = aggregate_quality(F, demands_arr * frac, demands_arr)
    assert 0.0 <= q <= 1.0 + 1e-12
    if frac < 1.0:
        # Concavity: quality is at least the volume fraction.
        assert q >= frac - 1e-9
