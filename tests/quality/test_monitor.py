"""Tests for the online quality monitor."""

from __future__ import annotations

import pytest

from repro.quality.functions import ExponentialQuality
from repro.quality.monitor import QualityMonitor

F = ExponentialQuality(c=0.003, x_max=1000.0)


def make_monitor() -> QualityMonitor:
    return QualityMonitor(F)


def test_starts_at_perfect_quality():
    m = make_monitor()
    assert m.quality == 1.0
    assert m.settled_jobs == 0


def test_record_full_job_keeps_quality_one():
    m = make_monitor()
    assert m.record(500.0, 500.0) == pytest.approx(1.0)


def test_record_partial_job_lowers_quality():
    m = make_monitor()
    q = m.record(100.0, 800.0)
    assert q == pytest.approx(float(F(100.0)) / float(F(800.0)))


def test_cumulative_accounting():
    m = make_monitor()
    m.record(500.0, 500.0)
    m.record(0.0, 500.0)
    expected = float(F(500.0)) / (2 * float(F(500.0)))
    assert m.quality == pytest.approx(expected)
    assert m.settled_jobs == 2


def test_processed_clamped_to_demand():
    m = make_monitor()
    m.record(1000.0, 500.0)  # overshoot is clamped
    assert m.quality == pytest.approx(1.0)


def test_projected_does_not_mutate():
    m = make_monitor()
    m.record(500.0, 500.0)
    before = m.quality
    proj = m.projected([100.0], [800.0])
    assert m.quality == before
    expected = (float(F(500.0)) + float(F(100.0))) / (float(F(500.0)) + float(F(800.0)))
    assert proj == pytest.approx(expected)


def test_deficit_positive_when_below_target():
    m = make_monitor()
    m.record(0.0, 500.0)
    assert m.deficit(0.9) == pytest.approx(0.9 * float(F(500.0)))
    m2 = make_monitor()
    m2.record(500.0, 500.0)
    assert m2.deficit(0.9) == 0.0


def test_trace_records_time_quality_pairs():
    m = make_monitor()
    m.record(500.0, 500.0, time=1.0)
    m.record(0.0, 500.0, time=2.0)
    trace = m.trace
    assert len(trace) == 2
    assert trace[0] == (1.0, pytest.approx(1.0))
    assert trace[1][0] == 2.0


def test_reset_clears_state():
    m = make_monitor()
    m.record(100.0, 500.0, time=1.0)
    m.reset()
    assert m.quality == 1.0
    assert m.settled_jobs == 0
    assert m.trace == []


def test_negative_volumes_rejected():
    m = make_monitor()
    with pytest.raises(ValueError):
        m.record(-1.0, 100.0)
    with pytest.raises(ValueError):
        m.record(1.0, -100.0)


def test_history_factor_weights_recent():
    m = QualityMonitor(F, history=0.5)
    m.record(0.0, 500.0)  # bad job
    for _ in range(10):
        m.record(500.0, 500.0)  # good stretch
    # With decay the early bad job is nearly forgotten.
    assert m.quality > 0.99


def test_invalid_history_rejected():
    with pytest.raises(ValueError):
        QualityMonitor(F, history=0.0)
    with pytest.raises(ValueError):
        QualityMonitor(F, history=1.5)
