"""Tests for the named application scenarios."""

from __future__ import annotations

import pytest

from repro.core.ge import make_ge
from repro.server.harness import SimulationHarness
from repro.workload.scenarios import SCENARIOS, scenario_config


def test_all_scenarios_build_valid_configs():
    for name in SCENARIOS:
        cfg = scenario_config(name, horizon=5.0)
        assert cfg.arrival_rate > 0
        assert cfg.quality_function() is not None


def test_web_search_matches_paper_defaults():
    cfg = scenario_config("web_search")
    assert cfg.demand_min == 130.0
    assert cfg.window_low == 0.150
    assert cfg.quality_c == 0.003


def test_nominal_rates_are_sub_saturation():
    """Every preset's nominal rate sits below its saturation point."""
    for name, scenario in SCENARIOS.items():
        cfg = scenario_config(name)
        assert cfg.arrival_rate < cfg.saturation_rate(), name


def test_rate_override():
    cfg = scenario_config("video_rendering", arrival_rate=5.0)
    assert cfg.arrival_rate == 5.0


def test_extra_overrides():
    cfg = scenario_config("gps_tracking", horizon=7.0, seed=9)
    assert cfg.horizon == 7.0
    assert cfg.seed == 9


def test_unknown_scenario():
    with pytest.raises(KeyError, match="available"):
        scenario_config("bitcoin_mining")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_ge_holds_target_on_every_scenario(name):
    """GE's quality guarantee is workload-shape agnostic."""
    cfg = scenario_config(name, horizon=6.0, seed=4)
    result = SimulationHarness(cfg, make_ge()).run()
    assert result.quality == pytest.approx(0.9, abs=0.03), name
    assert sum(result.outcomes.values()) == result.jobs
