"""Tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.generator import PoissonWorkloadGenerator, StaticWorkload
from repro.workload.job import Job


def make_gen(rate=150.0, horizon=30.0, seed=1, **kw) -> PoissonWorkloadGenerator:
    return PoissonWorkloadGenerator(
        rate, horizon=horizon, streams=RandomStreams(seed=seed), **kw
    )


def test_materialize_covers_horizon():
    jobs = make_gen().materialize()
    arrivals = np.array([j.arrival for j in jobs])
    assert arrivals[0] >= 0.0
    assert arrivals[-1] < 30.0
    assert np.all(np.diff(arrivals) >= 0)


def test_job_count_near_expectation():
    jobs = make_gen(rate=150.0, horizon=60.0).materialize()
    assert len(jobs) == pytest.approx(150 * 60, rel=0.1)


def test_materialize_is_cached():
    gen = make_gen()
    assert gen.materialize() is gen.materialize()


def test_same_seed_same_workload():
    a = make_gen(seed=5).materialize()
    b = make_gen(seed=5).materialize()
    assert [(j.arrival, j.demand, j.deadline) for j in a] == [
        (j.arrival, j.demand, j.deadline) for j in b
    ]


def test_different_seed_different_workload():
    a = make_gen(seed=5).materialize()
    b = make_gen(seed=6).materialize()
    assert [j.arrival for j in a] != [j.arrival for j in b]


def test_demands_shared_across_rates():
    """Demand stream is independent of the arrival stream, so sweeping
    the rate keeps the i-th job's demand identical."""
    a = make_gen(rate=100.0, seed=7).materialize()
    b = make_gen(rate=200.0, seed=7).materialize()
    n = min(len(a), len(b))
    assert [j.demand for j in a[:n]] == [j.demand for j in b[:n]]


def test_deadlines_respect_window():
    jobs = make_gen().materialize()
    for job in jobs[:200]:
        assert job.deadline - job.arrival == pytest.approx(0.150)


def test_install_delivers_jobs_in_arrival_order():
    sim = Simulator()
    gen = make_gen(rate=80.0, horizon=5.0)
    seen = []
    count = gen.install(sim, seen.append)
    sim.run()
    assert len(seen) == count == len(gen.materialize())
    assert all(seen[i].arrival <= seen[i + 1].arrival for i in range(len(seen) - 1))
    assert sim.now == seen[-1].arrival


def test_offered_load():
    gen = make_gen(rate=100.0)
    assert gen.offered_load == pytest.approx(100.0 * gen.demand.mean)


def test_invalid_horizon():
    with pytest.raises(Exception):
        make_gen(horizon=0.0)


class TestStaticWorkload:
    def jobs(self):
        return [
            Job(jid=2, arrival=1.0, deadline=2.0, demand=100.0),
            Job(jid=1, arrival=0.5, deadline=1.0, demand=50.0),
        ]

    def test_sorted_by_arrival(self):
        wl = StaticWorkload(self.jobs())
        assert [j.jid for j in wl.materialize()] == [1, 2]

    def test_install(self):
        sim = Simulator()
        wl = StaticWorkload(self.jobs())
        seen = []
        assert wl.install(sim, seen.append) == 2
        sim.run()
        assert [j.jid for j in seen] == [1, 2]

    def test_offered_load_empty(self):
        assert StaticWorkload([]).offered_load == 0.0
