"""Tests for the job lifecycle."""

from __future__ import annotations

import pytest

from repro.workload.job import Job, JobOutcome


def make_job(**kw) -> Job:
    defaults = dict(jid=1, arrival=0.0, deadline=0.15, demand=200.0)
    defaults.update(kw)
    return Job(**defaults)


def test_basic_properties():
    job = make_job()
    assert job.remaining == 200.0
    assert job.window == pytest.approx(0.15)
    assert job.laxity(0.05) == pytest.approx(0.10)
    assert not job.settled


def test_invalid_construction():
    with pytest.raises(ValueError):
        make_job(demand=0.0)
    with pytest.raises(ValueError):
        make_job(deadline=-1.0)
    with pytest.raises(ValueError):
        make_job(processed=-1.0)


def test_progress_accumulates_and_clamps():
    job = make_job()
    job.add_progress(120.0)
    assert job.processed == 120.0
    assert job.remaining == 80.0
    job.add_progress(200.0)  # overshoot clamps at demand
    assert job.processed == 200.0
    assert job.remaining == 0.0


def test_negative_progress_rejected():
    job = make_job()
    with pytest.raises(ValueError):
        job.add_progress(-5.0)


def test_assign_pins_core():
    job = make_job()
    job.assign(3)
    assert job.core == 3
    job.assign(3)  # idempotent
    with pytest.raises(ValueError):
        job.assign(4)  # no migration (§II-B)


def test_settle_auto_completed():
    job = make_job()
    job.add_progress(200.0)
    assert job.settle_auto() is JobOutcome.COMPLETED


def test_settle_auto_completed_with_float_noise():
    job = make_job()
    job.add_progress(200.0 - 1e-9)
    assert job.settle_auto() is JobOutcome.COMPLETED
    assert job.processed == job.demand


def test_settle_auto_expired():
    job = make_job()
    job.add_progress(50.0)
    assert job.settle_auto() is JobOutcome.EXPIRED


def test_settle_auto_dropped():
    job = make_job()
    assert job.settle_auto() is JobOutcome.DROPPED


def test_double_settle_rejected():
    job = make_job()
    job.settle(JobOutcome.CUT)
    with pytest.raises(ValueError):
        job.settle(JobOutcome.COMPLETED)
    with pytest.raises(ValueError):
        job.add_progress(1.0)


def test_settle_to_pending_rejected():
    job = make_job()
    with pytest.raises(ValueError):
        job.settle(JobOutcome.PENDING)


def test_outcome_finality_flags():
    assert not JobOutcome.PENDING.is_final
    for outcome in (JobOutcome.COMPLETED, JobOutcome.CUT, JobOutcome.EXPIRED, JobOutcome.DROPPED):
        assert outcome.is_final
