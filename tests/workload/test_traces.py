"""Tests for trace persistence."""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.generator import PoissonWorkloadGenerator
from repro.workload.traces import load_trace, loads_trace, save_trace


def test_round_trip_exact(tmp_path):
    gen = PoissonWorkloadGenerator(50.0, horizon=5.0, streams=RandomStreams(seed=2))
    jobs = gen.materialize()
    path = tmp_path / "trace.csv"
    assert save_trace(jobs, path) == len(jobs)
    loaded = load_trace(path)
    assert len(loaded) == len(jobs)
    for a, b in zip(jobs, loaded):
        assert (a.jid, a.arrival, a.deadline, a.demand) == (
            b.jid,
            b.arrival,
            b.deadline,
            b.demand,
        )


def test_loaded_jobs_are_fresh(tmp_path):
    gen = PoissonWorkloadGenerator(50.0, horizon=2.0, streams=RandomStreams(seed=2))
    jobs = gen.materialize()
    jobs[0].add_progress(10.0)
    path = tmp_path / "trace.csv"
    save_trace(jobs, path)
    loaded = load_trace(path)
    assert loaded[0].processed == 0.0


def test_bad_header_rejected():
    with pytest.raises(ValueError, match="bad header"):
        loads_trace("a,b,c,d\n1,0.0,1.0,100.0\n")


def test_empty_file_rejected():
    with pytest.raises(ValueError, match="empty"):
        loads_trace("")


def test_wrong_field_count_rejected():
    with pytest.raises(ValueError, match="expected 4 fields"):
        loads_trace("jid,arrival,deadline,demand\n1,0.0,1.0\n")


def test_invalid_job_values_rejected_with_line():
    with pytest.raises(ValueError, match=":2:"):
        loads_trace("jid,arrival,deadline,demand\n1,0.0,1.0,-5.0\n")


def test_blank_lines_skipped():
    jobs = loads_trace("jid,arrival,deadline,demand\n\n1,0.0,1.0,100.0\n\n")
    assert len(jobs) == 1
