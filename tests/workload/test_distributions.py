"""Tests for workload distributions (bounded Pareto etc.)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    BoundedPareto,
    ExponentialInterarrival,
    UniformDeadlineWindow,
)

PAPER = BoundedPareto(alpha=3.0, x_min=130.0, x_max=1000.0)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBoundedPareto:
    def test_paper_mean_is_192(self):
        """§IV-B: 'the mean service demand ... can then be calculated to
        be 192 processing units'."""
        assert PAPER.mean == pytest.approx(192.0, abs=0.5)

    def test_samples_within_bounds(self):
        samples = PAPER.sample(rng(), 20000)
        assert np.all(samples >= PAPER.x_min)
        assert np.all(samples <= PAPER.x_max)

    def test_empirical_mean_matches_analytic(self):
        samples = PAPER.sample(rng(1), 200_000)
        assert np.mean(samples) == pytest.approx(PAPER.mean, rel=0.01)

    def test_cdf_boundaries(self):
        assert PAPER.cdf(PAPER.x_min) == pytest.approx(0.0)
        assert PAPER.cdf(PAPER.x_max) == pytest.approx(1.0)
        assert PAPER.cdf(0.0) == 0.0
        assert PAPER.cdf(1e9) == 1.0

    def test_ppf_is_cdf_inverse(self):
        for u in (0.0, 0.1, 0.5, 0.9, 0.999):
            assert PAPER.cdf(PAPER.ppf(u)) == pytest.approx(u, abs=1e-12)

    def test_ppf_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PAPER.ppf(1.0)
        with pytest.raises(ValueError):
            PAPER.ppf(-0.01)

    def test_empirical_cdf_matches(self):
        samples = PAPER.sample(rng(2), 100_000)
        for x in (150.0, 200.0, 400.0, 800.0):
            empirical = float(np.mean(samples <= x))
            assert empirical == pytest.approx(PAPER.cdf(x), abs=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BoundedPareto(alpha=0.0)
        with pytest.raises(ConfigurationError):
            BoundedPareto(x_min=100.0, x_max=50.0)
        with pytest.raises(ConfigurationError):
            BoundedPareto(x_min=-1.0)

    def test_scalar_sample(self):
        x = PAPER.sample(rng())
        assert isinstance(x, float)
        assert PAPER.x_min <= x <= PAPER.x_max

    @given(st.floats(min_value=1.5, max_value=5.0))
    def test_mean_between_bounds(self, alpha):
        dist = BoundedPareto(alpha=alpha, x_min=100.0, x_max=1000.0)
        assert 100.0 < dist.mean < 1000.0


class TestExponentialInterarrival:
    def test_mean_gap(self):
        dist = ExponentialInterarrival(rate=150.0)
        assert dist.mean == pytest.approx(1 / 150.0)
        samples = dist.sample(rng(3), 100_000)
        assert np.mean(samples) == pytest.approx(dist.mean, rel=0.02)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ExponentialInterarrival(rate=0.0)


class TestUniformDeadlineWindow:
    def test_fixed_window(self):
        w = UniformDeadlineWindow(low=0.15, high=0.15)
        assert w.fixed
        assert w.sample(rng()) == 0.15
        assert np.all(w.sample(rng(), 10) == 0.15)

    def test_random_window_bounds(self):
        w = UniformDeadlineWindow(low=0.15, high=0.5)
        assert not w.fixed
        samples = w.sample(rng(4), 10000)
        assert np.all(samples >= 0.15)
        assert np.all(samples <= 0.5)
        assert np.mean(samples) == pytest.approx(w.mean, rel=0.02)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDeadlineWindow(low=0.0, high=0.5)
        with pytest.raises(ConfigurationError):
            UniformDeadlineWindow(low=0.5, high=0.1)
