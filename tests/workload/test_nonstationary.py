"""Tests for the piecewise-rate (non-stationary) workload extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.core.ge import make_ge
from repro.errors import ConfigurationError
from repro.server.harness import SimulationHarness
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.nonstationary import PiecewiseRateWorkload

PROFILE = [(10.0, 50.0), (10.0, 200.0), (10.0, 80.0)]


def make(profile=None, seed=3):
    return PiecewiseRateWorkload(profile or PROFILE, streams=RandomStreams(seed=seed))


def test_horizon_is_profile_length():
    assert make().horizon == 30.0


def test_rate_at_follows_profile():
    wl = make()
    assert wl.rate_at(5.0) == 50.0
    assert wl.rate_at(15.0) == 200.0
    assert wl.rate_at(25.0) == 80.0
    assert wl.rate_at(99.0) == 0.0


def test_arrivals_within_horizon_and_sorted():
    jobs = make().materialize()
    arrivals = np.array([j.arrival for j in jobs])
    assert arrivals[0] >= 0.0
    assert arrivals[-1] < 30.0
    assert np.all(np.diff(arrivals) >= 0)


def test_counts_track_segment_rates():
    jobs = make(profile=[(20.0, 50.0), (20.0, 200.0)], seed=5).materialize()
    first = sum(1 for j in jobs if j.arrival < 20.0)
    second = len(jobs) - first
    assert first == pytest.approx(20 * 50, rel=0.2)
    assert second == pytest.approx(20 * 200, rel=0.1)


def test_deterministic_per_seed():
    a = make(seed=9).materialize()
    b = make(seed=9).materialize()
    assert [j.arrival for j in a] == [j.arrival for j in b]


def test_offered_load():
    wl = make(profile=[(10.0, 100.0)])
    assert wl.offered_load == pytest.approx(100.0 * wl.demand.mean, rel=1e-9)


def test_invalid_profiles_rejected():
    with pytest.raises(ConfigurationError):
        PiecewiseRateWorkload([])
    with pytest.raises(ConfigurationError):
        PiecewiseRateWorkload([(0.0, 100.0)])
    with pytest.raises(ConfigurationError):
        PiecewiseRateWorkload([(10.0, 0.0)])


def test_install_feeds_simulator():
    sim = Simulator()
    wl = make(profile=[(2.0, 100.0)])
    seen = []
    count = wl.install(sim, seen.append)
    sim.run()
    assert len(seen) == count > 100


def test_ge_survives_load_swing():
    """End-to-end: GE holds settlement invariants across a rate swing."""
    wl = make(profile=[(4.0, 100.0), (4.0, 200.0), (4.0, 100.0)], seed=2)
    cfg = SimulationConfig(horizon=wl.horizon, seed=2)
    result = SimulationHarness(cfg, make_ge(), workload=wl).run()
    assert sum(result.outcomes.values()) == result.jobs
    assert 0.7 < result.quality <= 1.0
