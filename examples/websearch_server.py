#!/usr/bin/env python
"""The paper's motivating scenario: an interactive web-search server.

Simulates a day-night load pattern by sweeping the arrival rate across
a morning ramp, a lunchtime peak, and an evening tail, and shows how GE
adapts: deep cutting and high AES share when traffic is light, more
compensation and Water-Filling as the peak approaches.

Run:  python examples/websearch_server.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_be, make_ge
from repro.experiments.report import Series, ascii_plot

#: (label, requests/second) — a stylized daily traffic profile.
TRAFFIC = [
    ("03:00 night", 100.0),
    ("08:00 ramp", 130.0),
    ("12:00 peak", 185.0),
    ("15:00 high", 160.0),
    ("21:00 tail", 115.0),
]


def main() -> None:
    print("Web-search server: 16 cores, 320 W budget, 150 ms deadlines, Q_GE=0.9")
    print(f"{'period':>12} {'λ':>6} | {'GE quality':>10} {'GE energy':>10} "
          f"{'AES %':>6} | {'BE energy':>10} {'saving':>7}")

    ge_series = Series(label="GE energy")
    be_series = Series(label="BE energy")
    for i, (label, rate) in enumerate(TRAFFIC):
        config = SimulationConfig(arrival_rate=rate, horizon=20.0, seed=9)
        ge = SimulationHarness(config, make_ge()).run()
        be = SimulationHarness(config, make_be()).run()
        saving = 1.0 - ge.energy / be.energy
        print(
            f"{label:>12} {rate:6.0f} | {ge.quality:10.4f} {ge.energy:9.0f}J "
            f"{ge.aes_fraction:6.1%} | {be.energy:9.0f}J {saving:7.1%}"
        )
        ge_series.add(i, ge.energy)
        be_series.add(i, be.energy)

    print()
    print("Energy across the day (o = GE, x = BE):")
    print(ascii_plot([ge_series, be_series], width=50, height=10))
    print()
    print("GE tracks the 0.9 quality target all day; the energy saving is")
    print("largest off-peak, where aggressive cutting runs uncontested.")


if __name__ == "__main__":
    main()
