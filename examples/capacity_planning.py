#!/usr/bin/env python
"""Capacity planning with GE: how many cores / how much power budget?

Uses the Fig. 10/11 machinery to answer two provisioning questions for
a target load:

1. For a fixed 320 W budget, how many cores does the quality target
   need?  (More, weaker cores win — until a single core's equal power
   share can no longer serve one job by its deadline.)
2. For a fixed 16-core server, how small can the power budget get
   before the 0.9 target is lost?

Run:  python examples/capacity_planning.py [rate]
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, SimulationHarness, make_ge


def run(rate: float, **overrides):
    config = SimulationConfig(arrival_rate=rate, horizon=15.0, seed=4).with_overrides(
        **overrides
    )
    return SimulationHarness(config, make_ge()).run()


def main(rate: float | None = None) -> None:
    if rate is None:
        rate = 150.0

    print(f"== Core-count sweep at λ={rate:.0f} req/s, H=320 W ==")
    print(f"{'cores':>6} {'ES speed':>9} {'quality':>8} {'energy':>9} {'verdict':>10}")
    for m in (2, 4, 8, 16, 32, 64):
        result = run(rate, m=m)
        cfg = SimulationConfig(m=m)
        verdict = "OK" if result.quality >= 0.88 else "too few" if m < 16 else "too weak"
        print(
            f"{m:>6} {cfg.equal_share_speed():8.2f}G {result.quality:8.4f} "
            f"{result.energy:8.0f}J {verdict:>10}"
        )
    print("(the 2^x sweep is Fig. 11; 'too weak' marks the ES-capping regime,")
    print(" where one core's equal share cannot finish a big job in 150 ms)\n")

    print(f"== Budget sweep at λ={rate:.0f} req/s, m=16 ==")
    print(f"{'budget':>7} {'quality':>8} {'energy':>9} {'verdict':>9}")
    for budget in (80.0, 120.0, 160.0, 240.0, 320.0, 480.0):
        result = run(rate, budget=budget)
        verdict = "OK" if result.quality >= 0.88 else "starved"
        print(f"{budget:6.0f}W {result.quality:8.4f} {result.energy:8.0f}J {verdict:>9}")
    print("(Fig. 10: past the knee, extra budget buys nothing at this load)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else None)
