#!/usr/bin/env python
"""Extending the library: write your own scheduler in ~40 lines.

Implements *Greedy-EDF*: whenever a core is idle, run the
earliest-deadline queued job at the slowest feasible speed (like FDFS),
but **cut each job up-front** to the volume whose quality is Q_GE —
a naive per-job version of GE's batch cut, with no monitoring and no
compensation.  Comparing it against GE and FDFS shows what the paper's
batch cutting + compensation machinery buys over the obvious greedy.

Run:  python examples/custom_policy.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_ge
from repro.baselines.queue_order import FDFS
from repro.server.core import Segment
from repro.server.scheduler import Scheduler
from repro.workload.job import Job


class GreedyEDFCut(Scheduler):
    """Earliest-deadline greedy with a fixed per-job quality cut."""

    name = "G-EDF"

    def bind(self, harness) -> None:
        super().bind(harness)
        cfg = harness.config
        self._cap = harness.scale.max_speed_at_power(cfg.budget / cfg.m)
        # Volume at which a single job reaches the target quality.
        self._q_target = cfg.q_ge

    def _target_volume(self, job: Job) -> float:
        f = self.harness.quality_function
        # Cut this job alone to q_ge of *its own* achievable quality.
        return min(job.demand, f.inverse(self._q_target * float(f(job.demand))))

    def on_arrival(self, job: Job) -> None:
        self._dispatch()

    def on_core_idle(self, core_index: int) -> None:
        self._dispatch()

    def _dispatch(self) -> None:
        harness = self.harness
        now = harness.sim.now
        for core in harness.machine.cores:
            if core.has_work or not harness.queue:
                continue
            job = min(harness.queue, key=lambda j: (j.deadline, j.jid))
            harness.take_from_queue(job)
            window = job.deadline - now
            if window <= 0:
                continue
            job.assign(core.index)
            volume = max(0.0, self._target_volume(job) - job.processed)
            if volume <= 1e-9:
                continue
            model = harness.model
            needed = model.speed_for_throughput(volume / window)
            if needed <= self._cap:
                core.enqueue(Segment(job=job, volume=volume, speed=needed))
            else:
                doable = model.throughput(self._cap) * window
                core.enqueue(
                    Segment(job=job, volume=min(volume, doable), speed=self._cap, final=False)
                )


def main() -> None:
    print(f"{'policy':>8} {'quality':>8} {'energy':>9} {'notes'}")
    for rate in (120.0, 170.0):
        config = SimulationConfig(arrival_rate=rate, horizon=15.0, seed=13)
        ge = SimulationHarness(config, make_ge()).run()
        gedf = SimulationHarness(config, GreedyEDFCut()).run()
        fdfs = SimulationHarness(config, FDFS()).run()
        print(f"-- λ = {rate:.0f} req/s --")
        print(f"{'GE':>8} {ge.quality:8.4f} {ge.energy:8.0f}J  batch cut + compensation")
        print(f"{'G-EDF':>8} {gedf.quality:8.4f} {gedf.energy:8.0f}J  naive per-job cut")
        print(f"{'FDFS':>8} {fdfs.quality:8.4f} {fdfs.energy:8.0f}J  no cutting at all")
    print()
    print("The per-job cut saves energy but has no feedback: when jobs expire")
    print("it cannot win the lost quality back, so it drifts below target")
    print("under load — exactly the gap GE's compensation policy closes.")


if __name__ == "__main__":
    main()
