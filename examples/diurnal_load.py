#!/usr/bin/env python
"""A single continuous run under a diurnal (non-stationary) load.

Unlike ``websearch_server.py`` (separate runs per period), this drives
one GE instance through a night→peak→tail rate profile using the
:class:`repro.workload.nonstationary.PiecewiseRateWorkload` extension,
then reads the scheduler's own quality trace to show the compensation
policy reacting to the load swing in real time.

Run:  python examples/diurnal_load.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_ge
from repro.experiments.report import Series, ascii_plot
from repro.sim.rng import RandomStreams
from repro.workload.nonstationary import PiecewiseRateWorkload

#: (duration s, requests/s): a compressed day.
PROFILE = [
    (15.0, 100.0),  # night
    (10.0, 150.0),  # morning ramp
    (15.0, 190.0),  # peak (just above the 154 r/s critical load)
    (10.0, 120.0),  # evening tail
]


def main() -> None:
    workload = PiecewiseRateWorkload(PROFILE, streams=RandomStreams(seed=21))
    config = SimulationConfig(horizon=workload.horizon, seed=21)
    scheduler = make_ge()
    harness = SimulationHarness(config, scheduler, workload=workload)
    result = harness.run()

    print("Diurnal profile:", " -> ".join(f"{r:.0f}r/s×{d:.0f}s" for d, r in PROFILE))
    print(result.row())
    print(f"mode switches: {scheduler.controller.switches}, "
          f"AES share {result.aes_fraction:.1%}")
    print()

    # The monitor's quality trace, thinned for plotting.
    trace = harness.monitor.trace
    series = Series(label="cumulative quality")
    for t, q in trace[:: max(1, len(trace) // 120)]:
        series.add(t, q)
    rate = Series(label="load (scaled)")
    t = 0.0
    q_lo = min(series.y)
    q_hi = max(series.y)
    for duration, r in PROFILE:
        for frac in (0.0, 0.999):
            rate.add(t + duration * frac, q_lo + (q_hi - q_lo) * (r - 100.0) / 90.0)
        t += duration
    print("Quality under the swinging load (o = quality, x = load profile):")
    print(ascii_plot([series, rate], width=64, height=12))
    print()
    print("During the peak the monitor dips and GE leans on BQ compensation;")
    print("after the peak it recovers the surplus and returns to deep cutting.")


if __name__ == "__main__":
    main()
