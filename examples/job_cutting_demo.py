#!/usr/bin/env python
"""Fig. 2 as runnable code: Longest-First job cutting, step by step.

Reproduces the paper's four-job cutting schematic with the real
implementation, printing an ASCII bar per job before and after the cut
and the quality accounting that drives the stopping rule.

Run:  python examples/job_cutting_demo.py [Q_GE]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.cutting import lf_cut_stepwise, lf_cut_waterline
from repro.quality.functions import ExponentialQuality

DEMANDS = np.array([900.0, 620.0, 380.0, 180.0])


def bar(volume: float, cut_to: float | None = None, width: int = 50) -> str:
    """Render a job as a bar; '#' kept volume, '.' discarded tail."""
    total = int(round(volume / 1000.0 * width))
    if cut_to is None:
        return "#" * total
    kept = int(round(cut_to / 1000.0 * width))
    return "#" * kept + "." * (total - kept)


def main(q_target: float | None = None) -> None:
    if q_target is None:
        q_target = 0.9
    f = ExponentialQuality(c=0.003, x_max=1000.0)

    print(f"LF job cutting to Q_GE = {q_target}")
    print(f"quality function: f(x) = (1-e^-0.003x)/(1-e^-3)\n")

    targets = lf_cut_waterline(f, DEMANDS, q_target)
    stepwise = lf_cut_stepwise(f, DEMANDS, q_target)
    assert np.allclose(targets, stepwise, atol=0.5), "implementations disagree"

    print(f"{'job':>4} {'demand':>8} {'target':>8} {'f(p)':>7} {'f(c)':>7}  volume")
    for i, (p, c) in enumerate(zip(DEMANDS, targets), start=1):
        print(
            f"{i:>4} {p:8.1f} {c:8.1f} {float(f(p)):7.4f} {float(f(c)):7.4f}  {bar(p, c)}"
        )

    q = float(np.sum(f(targets))) / float(np.sum(f(DEMANDS)))
    kept = float(np.sum(targets)) / float(np.sum(DEMANDS))
    print()
    print(f"aggregate quality after cut : {q:.4f}  (target {q_target})")
    print(f"volume kept                 : {kept:.1%}")
    print(f"energy leverage             : {1-kept:.1%} of the work removed for "
          f"{1-q:.1%} quality loss")
    print()
    print("Note how the two longest jobs are levelled to a common value while")
    print("the short jobs are untouched — the diminishing-returns tail of the")
    print("long jobs is the cheapest quality to give up.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else None)
