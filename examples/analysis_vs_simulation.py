#!/usr/bin/env python
"""Fluid-limit analysis vs. discrete-event simulation, side by side.

The :mod:`repro.analysis` package predicts GE's behaviour without
simulating: the LF cut converges to a waterline L on the demand
distribution, from which the kept volume and an energy lower bound
follow.  This example runs the real simulator across arrival rates and
prints the prediction error — a self-check any user can run, and a fast
way to answer what-if questions before paying for a simulation.

Run:  python examples/analysis_vs_simulation.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_ge
from repro.analysis import (
    energy_rate_lower_bound,
    predict_cut_stats,
)

RATES = (100.0, 120.0, 140.0)


def main() -> None:
    config = SimulationConfig(horizon=20.0, seed=8)
    f = config.quality_function()
    dist = config.demand_distribution()
    model = config.power_model()

    stats = predict_cut_stats(f, dist, config.q_ge)
    print("Fluid predictions for Q_GE = 0.9 on the paper's workload:")
    print(f"  cut waterline L         : {stats.waterline:7.1f} units")
    print(f"  kept volume per job     : {stats.kept_volume:7.1f} units "
          f"({stats.kept_fraction:.1%} of the mean demand)")
    print()

    print(f"{'λ':>6} | {'sim volume/job':>14} {'fluid':>7} | "
          f"{'sim W':>8} {'bound W':>8} {'ratio':>6}")
    for rate in RATES:
        cfg = config.with_overrides(arrival_rate=rate)
        result = SimulationHarness(cfg, make_ge()).run()
        sim_volume = result.completed_volume / result.jobs
        sim_watts = result.energy / result.duration
        bound = energy_rate_lower_bound(
            rate, dist, stats.waterline, model, cfg.window_low
        )
        print(
            f"{rate:6.0f} | {sim_volume:14.1f} {stats.kept_volume:7.1f} | "
            f"{sim_watts:8.1f} {bound:8.1f} {sim_watts / bound:6.2f}"
        )
    print()
    print("The simulated volume per job tracks the fluid waterline, and the")
    print("measured power sits above (but within ~2x of) the no-contention")
    print("lower bound — the gap is queueing contention plus compensation.")


if __name__ == "__main__":
    main()
