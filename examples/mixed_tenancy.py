#!/usr/bin/env python
"""Mixed tenancy: two error-tolerant services sharing one server.

The paper evaluates one application per server; this example uses the
``repro.mixed`` extension to host a sharply-saturating search service
(c=0.009 — the first 20 % of a scan carries most of the quality) next
to a linear-quality analytics service (every record counts equally),
50/50 on the same 16 cores.

It contrasts three operating modes on identical arrivals and shows why
class-awareness matters: a class-blind cutter cannot place the shared
quality target correctly when the classes' shapes differ.

Run:  python examples/mixed_tenancy.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_be, make_ge
from repro.mixed import ClassAwareMonitor, MixedClassWorkload, make_mixed_ge
from repro.quality.functions import ExponentialQuality, LinearQuality
from repro.sim.rng import RandomStreams

FUNCTIONS = [
    ExponentialQuality(c=0.009, x_max=1000.0),  # class 0: web search
    LinearQuality(x_max=1000.0),  # class 1: exact analytics
]
CLASS_NAMES = ["search (concave)", "analytics (linear)"]


def class_quality(jobs, klass):
    f = FUNCTIONS[klass]
    mine = [j for j in jobs if j.klass == klass]
    achieved = sum(float(f(j.processed)) for j in mine)
    potential = sum(float(f(j.demand)) for j in mine)
    return achieved / potential if potential else 1.0


def main() -> None:
    config = SimulationConfig(arrival_rate=130.0, horizon=20.0, seed=6)

    def workload():
        return MixedClassWorkload(
            config.workload(), [0.5, 0.5], streams=RandomStreams(seed=42)
        )

    arms = {}
    aware_sched, aware_mon = make_mixed_ge(FUNCTIONS)
    arms["GE-Mixed"] = SimulationHarness(
        config, aware_sched, workload=workload(), monitor=aware_mon
    )
    arms["GE-blind"] = SimulationHarness(
        config, make_ge(), workload=workload(), monitor=ClassAwareMonitor(FUNCTIONS)
    )
    arms["BE"] = SimulationHarness(
        config, make_be(), workload=workload(), monitor=ClassAwareMonitor(FUNCTIONS)
    )

    print("Two services, one server, Q_GE = 0.9 on the mixed aggregate\n")
    print(f"{'policy':>9} {'mixed Q':>8} {'energy':>9}   per-class quality")
    for name, harness in arms.items():
        result = harness.run()
        jobs = harness.workload.materialize()
        per_class = ", ".join(
            f"{CLASS_NAMES[k]}={class_quality(jobs, k):.3f}" for k in (0, 1)
        )
        print(f"{name:>9} {result.quality:8.4f} {result.energy:8.0f}J   {per_class}")

    print()
    print("GE-Mixed hits the mixed target by cutting the concave class deep")
    print("(its tails are cheap) while barely touching the linear class;")
    print("the class-blind cutter treats both alike and over-delivers.")


if __name__ == "__main__":
    main()
