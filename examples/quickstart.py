#!/usr/bin/env python
"""Quickstart: run the GE scheduler once and inspect the result.

This is the smallest end-to-end use of the library: build the paper's
default configuration (a 16-core, 320 W web-search server), run the
Good Enough scheduler against a Poisson workload for 30 simulated
seconds, and compare it with Best-Effort on the *same* arrivals.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, SimulationHarness, make_be, make_ge


def main() -> None:
    # The paper's §IV-B setup, shortened to 30 s of arrivals.
    config = SimulationConfig(
        arrival_rate=140.0,  # requests per second
        horizon=30.0,  # seconds of arrivals (paper: 600)
        q_ge=0.9,  # "good enough" quality target
        seed=42,
    )

    print(f"critical load : {config.critical_load_rate():6.1f} req/s")
    print(f"saturation    : {config.saturation_rate():6.1f} req/s")
    print()

    # Same config + same seed => both schedulers see identical jobs.
    ge = SimulationHarness(config, make_ge()).run()
    be = SimulationHarness(config, make_be()).run()

    for result in (ge, be):
        print(result.row())

    saving = 1.0 - ge.energy / be.energy
    print()
    print(f"GE delivered quality {ge.quality:.3f} (target {config.q_ge}) "
          f"using {saving:.1%} less energy than BE (quality {be.quality:.3f}).")
    print(f"GE spent {ge.aes_fraction:.0%} of the time in the AES mode and cut "
          f"{ge.outcomes.get('cut', 0)} of {ge.jobs} jobs.")


if __name__ == "__main__":
    main()
